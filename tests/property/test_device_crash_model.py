"""Property test: the device's incremental durability tracking (deque +
monotone horizon) is observationally identical to the naive model it
replaced — a flat pending list rebuilt on every ``mark_durable`` and
rolled back record-by-record on ``crash``."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.device import SectorDevice

NUM_SECTORS = 16
SECTOR_SIZE = 32


class NaiveCrashModel:
    """The pre-optimization semantics, implemented as literally as
    possible: every write appends an undo record, every ``mark_durable``
    filters the whole list, ``crash`` pops records in reverse write
    order."""

    def __init__(self) -> None:
        self.data = bytearray(NUM_SECTORS * SECTOR_SIZE)
        self.pending = []  # (completion_time, sector, old_data)

    def write(
        self,
        sector: int,
        data: bytes,
        completion_time: float,
        durable: bool = False,
    ) -> None:
        start = sector * SECTOR_SIZE
        if not durable:
            self.pending.append(
                (
                    completion_time,
                    sector,
                    bytes(self.data[start : start + len(data)]),
                )
            )
        self.data[start : start + len(data)] = data

    def mark_durable(self, now: float) -> None:
        self.pending = [p for p in self.pending if p[0] > now]

    def crash(self, now: float) -> None:
        self.mark_durable(now)
        while self.pending:
            _, sector, old_data = self.pending.pop()
            start = sector * SECTOR_SIZE
            self.data[start : start + len(old_data)] = old_data


def payloads():
    return st.binary(min_size=SECTOR_SIZE, max_size=SECTOR_SIZE)


# Writes may carry arbitrary (non-monotone) completion times — exactly
# the case where the optimized device must fall back from the deque
# prefix-drain to the full filter.  mark_durable times are drawn freely
# too; the horizon logic has to cope with them arriving out of order.
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(min_value=0, max_value=NUM_SECTORS - 1),
            payloads(),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
        st.tuples(
            st.just("mark_durable"),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
        st.tuples(
            st.just("crash"),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
    ),
    max_size=40,
)


@settings(max_examples=300, deadline=None)
@given(ops)
def test_device_matches_naive_reference(operations):
    device = SectorDevice(NUM_SECTORS, SECTOR_SIZE)
    model = NaiveCrashModel()
    for op in operations:
        if op[0] == "write":
            _, sector, data, completion = op
            device.write(sector, data, completion_time=completion)
            model.write(sector, data, completion)
        elif op[0] == "mark_durable":
            device.mark_durable(op[1])
            model.mark_durable(op[1])
        else:
            device.crash(op[1])
            model.crash(op[1])
            device.revive()
        assert bytes(device.read(0, NUM_SECTORS)) == bytes(model.data)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=NUM_SECTORS - 1),
            payloads(),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    ),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
def test_crash_rolls_back_in_reverse_write_order(writes, crash_time):
    """Overlapping writes must unwind newest-first, so the surviving
    bytes are exactly the state as of the last durable write."""
    device = SectorDevice(NUM_SECTORS, SECTOR_SIZE)
    model = NaiveCrashModel()
    for sector, data, completion in writes:
        device.write(sector, data, completion_time=completion)
        model.write(sector, data, completion)
    device.crash(crash_time)
    model.crash(crash_time)
    device.revive()
    assert bytes(device.read(0, NUM_SECTORS)) == bytes(model.data)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=NUM_SECTORS - 1),
            payloads(),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            st.booleans(),
        ),
        max_size=30,
    )
)
def test_durable_writes_never_roll_back(writes):
    """``durable=True`` (the sync-request path, where the caller has
    already advanced the clock past the completion time) must pin the
    bytes across any crash."""
    device = SectorDevice(NUM_SECTORS, SECTOR_SIZE)
    model = NaiveCrashModel()
    for sector, data, completion, durable in writes:
        device.write(sector, data, completion_time=completion, durable=durable)
        model.write(sector, data, completion, durable=durable)
    device.crash(0.0)
    model.crash(0.0)
    device.revive()
    assert bytes(device.read(0, NUM_SECTORS)) == bytes(model.data)
