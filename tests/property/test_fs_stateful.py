"""Stateful property testing: random operation sequences vs a model.

A hypothesis state machine drives a small LFS (and, separately, FFS)
through creates, writes, truncates, deletes, syncs, cleans, crashes and
remounts, comparing observable state against a dictionary model after
every step.  This is the test that hunts for cross-feature interactions
(e.g. cleaning a segment whose file was just truncated).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.disk.geometry import wren_iv
from repro.disk.sim_disk import SimDisk
from repro.ffs.filesystem import FastFileSystem
from repro.lfs.filesystem import LogStructuredFS
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel
from repro.units import KIB, MIB
from tests.conftest import small_ffs_config, small_lfs_config

_FILE_NAMES = [f"/f{i}" for i in range(8)]
_payloads = st.binary(min_size=0, max_size=40 * KIB)


class _FsMachine(RuleBasedStateMachine):
    """Shared machine body; subclasses pick the file system."""

    make_fs = None  # set by subclasses
    remake_fs = None

    @initialize()
    def setup(self):
        self.clock = SimClock()
        self.cpu = CpuModel(self.clock)
        self.disk = SimDisk(wren_iv(48 * MIB), self.clock)
        self.fs = type(self).make_fs(self)
        self.model = {}
        self.synced_model = {}

    # -- operations -----------------------------------------------------

    @rule(name=st.sampled_from(_FILE_NAMES), payload=_payloads)
    def write_whole_file(self, name, payload):
        self.fs.write_file(name, payload)
        self.model[name] = payload

    @rule(
        name=st.sampled_from(_FILE_NAMES),
        offset=st.integers(0, 60 * KIB),
        payload=st.binary(min_size=1, max_size=8 * KIB),
    )
    def pwrite(self, name, offset, payload):
        if name not in self.model:
            return
        with self.fs.open(name) as handle:
            handle.pwrite(offset, payload)
        old = self.model[name]
        if offset > len(old):
            old = old + b"\x00" * (offset - len(old))
        self.model[name] = old[:offset] + payload + old[offset + len(payload):]

    @rule(name=st.sampled_from(_FILE_NAMES), size=st.integers(0, 50 * KIB))
    def truncate(self, name, size):
        if name not in self.model:
            return
        with self.fs.open(name) as handle:
            handle.truncate(size)
        old = self.model[name]
        if size <= len(old):
            self.model[name] = old[:size]
        else:
            self.model[name] = old + b"\x00" * (size - len(old))

    @rule(name=st.sampled_from(_FILE_NAMES))
    def delete(self, name):
        if name not in self.model:
            return
        self.fs.unlink(name)
        del self.model[name]

    @rule()
    def sync(self):
        self.fs.sync()
        self.synced_model = dict(self.model)

    @rule()
    def advance_time(self):
        self.clock.advance(31.0)  # runs the age-based write-back past due

    # -- invariants -------------------------------------------------

    @invariant()
    def files_match_model(self):
        if not hasattr(self, "fs"):
            return
        names = set(self.fs.listdir("/"))
        assert names == {n.lstrip("/") for n in self.model}
        for name, payload in self.model.items():
            assert self.fs.read_file(name) == payload


class LfsMachine(_FsMachine):
    def make_fs(self):
        return LogStructuredFS.mkfs(self.disk, self.cpu, small_lfs_config())

    @rule()
    def checkpoint(self):
        self.fs.checkpoint()
        self.synced_model = dict(self.model)

    @rule()
    def clean(self):
        self.fs.clean_now(self.fs.layout.num_segments)

    @rule()
    def remount(self):
        self.fs.unmount()
        self.fs = LogStructuredFS.mount(self.disk, self.cpu, small_lfs_config())
        self.synced_model = dict(self.model)

    @rule()
    def crash_and_recover(self):
        self.fs.sync()
        synced = dict(self.model)
        self.fs.crash()
        self.disk.revive()
        self.fs = LogStructuredFS.mount(self.disk, self.cpu, small_lfs_config())
        # Everything synced must be recovered exactly (roll-forward).
        self.model = synced
        self.synced_model = dict(synced)


class FfsMachine(_FsMachine):
    def make_fs(self):
        return FastFileSystem.mkfs(self.disk, self.cpu, small_ffs_config())

    @rule()
    def remount(self):
        self.fs.unmount()
        self.fs = FastFileSystem.mount(self.disk, self.cpu, small_ffs_config())


TestLfsStateful = LfsMachine.TestCase
TestLfsStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestFfsStateful = FfsMachine.TestCase
TestFfsStateful.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
