"""Property tests for the zero-copy device read path.

``SectorDevice.read`` returns read-only memoryviews aliasing the live
device image.  Two things must hold for that to be safe:

* a view can never be used to mutate the device (it is read-only), and
* nothing observable — crash rollback, recovery, remounted file
  contents, the final device image — differs from the old copy-semantics
  reads, because every consumer that needs a stable snapshot makes its
  own explicit copy.

The first test drives a raw device through arbitrary schedules of
writes, reads, durability horizons and crashes, mirrored against a
second device consumed via ``copy=True`` snapshots.  The second builds
a real LFS (readahead on, so the clustered/prefetch read path runs),
crashes it mid-life, remounts, and compares the surviving image and
file contents against an identical run with copy-semantics reads
patched back in.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.device import SectorDevice
from repro.lfs.filesystem import LogStructuredFS, make_lfs
from tests.conftest import small_lfs_config
from repro.units import KIB, MIB

NUM_SECTORS = 24
SECTOR_SIZE = 32


@st.composite
def device_schedules(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        kind = draw(st.sampled_from(["write", "read", "durable", "crash"]))
        if kind == "write":
            sector = draw(st.integers(0, NUM_SECTORS - 1))
            count = draw(st.integers(1, min(4, NUM_SECTORS - sector)))
            fill = draw(st.integers(0, 255))
            completion = draw(
                st.floats(0, 100, allow_nan=False, allow_infinity=False)
            )
            durable = draw(st.booleans())
            ops.append(("write", sector, count, fill, completion, durable))
        elif kind == "read":
            sector = draw(st.integers(0, NUM_SECTORS - 1))
            count = draw(st.integers(1, NUM_SECTORS - sector))
            ops.append(("read", sector, count))
        else:
            now = draw(
                st.floats(0, 100, allow_nan=False, allow_infinity=False)
            )
            ops.append((kind, now))
    return ops


class TestDeviceViewSemantics:
    @given(device_schedules())
    @settings(max_examples=120, deadline=None)
    def test_views_are_readonly_and_never_diverge_from_copies(self, ops):
        zero = SectorDevice(NUM_SECTORS, SECTOR_SIZE)
        snap = SectorDevice(NUM_SECTORS, SECTOR_SIZE)
        held = []
        for op in ops:
            if op[0] == "write":
                _, sector, count, fill, completion, durable = op
                data = bytes([fill]) * (count * SECTOR_SIZE)
                zero.write(sector, data, completion, durable=durable)
                snap.write(sector, data, completion, durable=durable)
            elif op[0] == "read":
                _, sector, count = op
                view = zero.read(sector, count)
                copied = snap.read(sector, count, copy=True)
                assert isinstance(view, memoryview) and view.readonly
                with pytest.raises(TypeError):
                    view[0] = 0
                assert bytes(view) == copied
                held.append((sector, count, view))
            elif op[0] == "durable":
                zero.mark_durable(op[1])
                snap.mark_durable(op[1])
            else:
                zero.crash(op[1])
                snap.crash(op[1])
                zero.revive()
                snap.revive()
        image = zero.snapshot()
        assert image == snap.snapshot()
        # Held views alias live storage: they always show the *current*
        # image, including the effects of crash rollback — the reason
        # snapshot consumers must opt into copy=True.
        for sector, count, view in held:
            start = sector * SECTOR_SIZE
            assert bytes(view) == image[start : start + count * SECTOR_SIZE]


@contextmanager
def copy_semantics_reads():
    """Patch ``SectorDevice.read`` back to returning bytes copies."""
    original = SectorDevice.read

    def read_with_copies(self, sector, count, *, copy=False):
        result = original(self, sector, count, copy=copy)
        return result if isinstance(result, bytes) else bytes(result)

    SectorDevice.read = read_with_copies
    try:
        yield
    finally:
        SectorDevice.read = original


def _crash_remount_run(files, copy_semantics):
    def run():
        config = small_lfs_config(
            segment_size=64 * KIB, cache_bytes=1 * MIB, readahead_blocks=8
        )
        fs = make_lfs(total_bytes=8 * MIB, config=config)
        for index, payload in enumerate(files):
            fs.write_file(f"/f{index}", payload)
            if index == len(files) // 2:
                fs.checkpoint()
        fs.sync()
        fs.crash()
        fs.disk.revive()
        again = LogStructuredFS.mount(fs.disk, fs.cpu, config)
        contents = {}
        for index in range(len(files)):
            path = f"/f{index}"
            if again.exists(path):
                contents[path] = again.read_file(path)
        return fs.disk.device.snapshot(), contents

    if copy_semantics:
        with copy_semantics_reads():
            return run()
    return run()


class TestCrashRemountMatchesCopySemantics:
    @given(
        st.lists(
            st.binary(min_size=0, max_size=12 * KIB),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_image_and_contents_identical(self, files):
        view_image, view_contents = _crash_remount_run(
            files, copy_semantics=False
        )
        copy_image, copy_contents = _crash_remount_run(
            files, copy_semantics=True
        )
        assert view_image == copy_image
        assert view_contents == copy_contents
