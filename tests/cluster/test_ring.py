"""Property tests for the consistent-hash ring and prefix placement.

The ring's contract has three legs the cluster layer leans on:

* **balance** — with enough keys per shard, no shard's load strays far
  from the mean (the router never rebalances a fresh cluster, so the
  ring's spread *is* the cluster's spread);
* **determinism** — lookups are a pure function of (shard set,
  replicas, key): rebuild order, process boundaries and insertion
  order must not matter (this is why the ring hashes with SHA-1, not
  the per-process-salted builtin ``hash()``);
* **minimal remapping** — adding a shard only pulls keys *onto* the
  new shard; removing one only moves the keys it held.  Everything
  else stays put, which is what makes live migration affordable.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import (
    HashRing,
    PrefixPlacement,
    round_robin_table,
    stable_hash,
)

shard_sets = st.sets(st.integers(0, 10**6), min_size=2, max_size=12)


def client_keys(count: int):
    return [f"/c{index}" for index in range(count)]


@settings(max_examples=25, deadline=None)
@given(shard_ids=shard_sets)
def test_ring_balance_bounded(shard_ids):
    """Max shard load stays within 2x the mean at 100 keys/shard."""
    ring = HashRing(sorted(shard_ids))
    keys = client_keys(100 * len(shard_ids))
    counts = {shard_id: 0 for shard_id in shard_ids}
    for key in keys:
        counts[ring.lookup(key)] += 1
    mean = len(keys) / len(shard_ids)
    assert max(counts.values()) <= 2.0 * mean


@settings(max_examples=50, deadline=None)
@given(shard_ids=shard_sets, data=st.data())
def test_ring_lookup_deterministic(shard_ids, data):
    """Same shard set => same mapping, whatever the insertion order."""
    ordered = sorted(shard_ids)
    shuffled = data.draw(st.permutations(ordered))
    ring_a = HashRing(ordered)
    ring_b = HashRing(shuffled)
    for key in client_keys(64):
        assert ring_a.lookup(key) == ring_b.lookup(key)


@settings(max_examples=50, deadline=None)
@given(shard_ids=shard_sets, new_shard=st.integers(0, 10**6))
def test_ring_add_remaps_minimally(shard_ids, new_shard):
    """Adding a shard only moves keys onto the new shard."""
    if new_shard in shard_ids:
        return
    keys = client_keys(200)
    ring = HashRing(sorted(shard_ids))
    before = {key: ring.lookup(key) for key in keys}
    ring.add_shard(new_shard)
    for key in keys:
        after = ring.lookup(key)
        assert after == before[key] or after == new_shard


@settings(max_examples=50, deadline=None)
@given(shard_ids=shard_sets, data=st.data())
def test_ring_remove_remaps_minimally(shard_ids, data):
    """Removing a shard only moves the keys it was serving."""
    victim = data.draw(st.sampled_from(sorted(shard_ids)))
    keys = client_keys(200)
    ring = HashRing(sorted(shard_ids))
    before = {key: ring.lookup(key) for key in keys}
    ring.remove_shard(victim)
    for key in keys:
        after = ring.lookup(key)
        if before[key] == victim:
            assert after != victim
        else:
            assert after == before[key]


def test_stable_hash_is_not_builtin_hash():
    """Pinned values: SHA-1-derived, identical across processes."""
    assert stable_hash("/c0") == stable_hash("/c0")
    assert stable_hash("/c0") != stable_hash("/c1")
    # A pinned literal guards against someone swapping the hash
    # function (which would silently remap every deployed cluster).
    assert stable_hash("shard-0:0") == 0x81EA1B4AE4C0690D


def test_ring_rejects_duplicates_and_empty_lookup():
    ring = HashRing([1, 2])
    with pytest.raises(ValueError):
        ring.add_shard(1)
    with pytest.raises(ValueError):
        ring.remove_shard(7)
    empty = HashRing()
    with pytest.raises(ValueError):
        empty.lookup("/c0")


def test_prefix_placement_longest_match_and_pin():
    placement = PrefixPlacement({"/c1": 1, "/c12": 2}, default=0)
    assert placement.shard_for("/c12") == 2  # longest prefix wins
    assert placement.shard_for("/c1") == 1
    assert placement.shard_for("/c9") == 0  # default
    placement.pin("/c1", 3)
    assert placement.shard_for("/c1") == 3
    assert placement.shard_for("/c12") == 2


def test_round_robin_table_is_exactly_balanced():
    table = round_robin_table(client_keys(8), [0, 1])
    placement = PrefixPlacement(table)
    counts = {0: 0, 1: 0}
    for key in client_keys(8):
        counts[placement.shard_for(key)] += 1
    assert counts == {0: 4, 1: 4}
