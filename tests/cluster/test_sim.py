"""Cluster simulation: grouping, live migration, jobs determinism.

These are the acceptance tests the issue pins:

* a mid-load migration finishes with **both** shard images passing
  ``verify_lfs`` and zero lost acked writes (every issued request
  completes — parked requests are resubmitted at cutover, not
  dropped);
* the same seeded run renders **byte-identically** for ``jobs=1`` and
  ``jobs>1`` — stats text, merged telemetry report and per-shard image
  hashes alike.
"""

from repro.cluster import (
    ClusterConfig,
    MigrationSpec,
    build_groups,
    run_cluster,
)
from repro.obs import render_report


def test_build_groups_merges_migration_pairs():
    config = ClusterConfig(shards=4, clients=8)
    assert build_groups(config) == [(0,), (1,), (2,), (3,)]
    config = ClusterConfig(
        shards=4,
        clients=8,
        migrations=(MigrationSpec(2, 0, 0.1),),
    )
    assert build_groups(config) == [(0, 2), (1,), (3,)]


def test_plain_cluster_run_completes_and_verifies():
    config = ClusterConfig(
        shards=2, clients=6, seed=3, requests_per_client=8
    )
    result = run_cluster(config)
    assert result.completed == 6 * 8
    assert result.consistent
    assert result.elapsed > 0
    assert len(result.shards) == 2
    for row in result.shards:
        assert row["stats"].dropped == 0
        assert row["verify_errors"] == []
    assert (
        result.telemetry.gauge("cluster.shards").value == 2
    )


def test_live_migration_loses_nothing_and_verifies_both_sides():
    config = ClusterConfig(
        shards=2,
        clients=8,
        seed=0,
        requests_per_client=12,
        migrations=(MigrationSpec(1, 0, 0.05),),
    )
    result = run_cluster(config)
    # Zero lost acked writes: every issued request completed, nothing
    # dropped, on either side of the cutover.
    assert result.completed == 8 * 12
    for row in result.shards:
        assert row["stats"].dropped == 0
    # Both images — the drained source and the adopting target — pass
    # the offline consistency check.
    assert result.consistent
    summary = result.migrations[0]
    assert summary["source"] == 1 and summary["target"] == 0
    assert summary["clients"] > 0
    assert summary["files"] > 0 and summary["bytes"] > 0
    assert summary["cutover"] > summary["started"] > 0
    telemetry = result.telemetry
    assert telemetry.counter("cluster.migrations").value == 1
    assert telemetry.counter("cluster.routing_flips").value == 1
    assert (
        telemetry.counter("cluster.migrated_files").value
        == summary["files"]
    )
    # The drain window parks at least one request per frozen client
    # tick, so the redirect path (and its latency component) is hit.
    assert summary["redirected"] > 0
    assert (
        telemetry.counter("cluster.redirected_requests").value
        == summary["redirected"]
    )


def test_jobs_output_is_byte_identical():
    config = ClusterConfig(
        shards=3,
        clients=9,
        seed=7,
        requests_per_client=8,
        migrations=(MigrationSpec(2, 0, 0.05),),
    )
    serial = run_cluster(config, jobs=1)
    fanned = run_cluster(config, jobs=3)
    assert serial.render() == fanned.render()
    assert render_report(serial.telemetry) == render_report(
        fanned.telemetry
    )
    assert [row["image_sha"] for row in serial.shards] == [
        row["image_sha"] for row in fanned.shards
    ]
