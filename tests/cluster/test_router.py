"""ShardRouter: seeding, coverage, atomic flips, telemetry."""

import pytest

from repro.cluster import ClusterConfig, ShardRouter, client_key
from repro.errors import InvalidArgumentError
from repro.obs import Telemetry


def test_assignments_partition_all_clients():
    config = ClusterConfig(shards=4, clients=64)
    router = ShardRouter(config)
    table = router.assignments()
    assert sorted(table) == [0, 1, 2, 3]
    everyone = [cid for cids in table.values() for cid in cids]
    assert sorted(everyone) == list(range(64))
    for cid in range(64):
        assert cid in table[router.shard_of(cid)]


def test_hash_routing_matches_policy_and_is_stable():
    config = ClusterConfig(shards=4, clients=32)
    again = ShardRouter(ClusterConfig(shards=4, clients=32))
    router = ShardRouter(config)
    for cid in range(32):
        assert router.shard_of(cid) == again.shard_of(cid)
        assert router.shard_of(cid) == router.policy.shard_for(
            client_key(cid)
        )


def test_prefix_placement_is_exactly_balanced():
    config = ClusterConfig(shards=4, clients=16, placement="prefix")
    router = ShardRouter(config)
    table = router.assignments()
    assert all(len(cids) == 4 for cids in table.values())


def test_flip_repoints_and_counts():
    telemetry = Telemetry()
    config = ClusterConfig(shards=2, clients=8)
    router = ShardRouter(config, telemetry=telemetry)
    moving = router.assignments()[1]
    router.flip(moving, 0)
    assert router.assignments()[1] == []
    assert sorted(router.assignments()[0]) == list(range(8))
    flips = telemetry.counter("cluster.routing_flips")
    assert flips.value == 1


def test_config_validation():
    with pytest.raises(InvalidArgumentError):
        ClusterConfig(shards=0)
    with pytest.raises(InvalidArgumentError):
        ClusterConfig(placement="modulo")
    from repro.cluster import MigrationSpec

    with pytest.raises(InvalidArgumentError):
        MigrationSpec(1, 1, 0.5)
    with pytest.raises(InvalidArgumentError):
        ClusterConfig(shards=2, migrations=(MigrationSpec(0, 5, 0.1),))
    with pytest.raises(InvalidArgumentError):
        ClusterConfig(
            shards=3,
            migrations=(
                MigrationSpec(0, 1, 0.1),
                MigrationSpec(1, 2, 0.2),
            ),
        )
