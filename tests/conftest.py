"""Shared fixtures: small, fast simulated machines for unit tests."""

from __future__ import annotations

import pytest

from repro.disk.geometry import wren_iv
from repro.disk.sim_disk import SimDisk
from repro.disk.trace import TraceRecorder
from repro.ffs.config import FfsConfig
from repro.ffs.filesystem import FastFileSystem
from repro.lfs.config import LfsConfig
from repro.lfs.filesystem import LogStructuredFS
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel
from repro.units import KIB, MIB


SMALL_DEVICE = 64 * MIB


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def cpu(clock: SimClock) -> CpuModel:
    return CpuModel(clock)


@pytest.fixture
def disk(clock: SimClock) -> SimDisk:
    return SimDisk(wren_iv(SMALL_DEVICE), clock)


@pytest.fixture
def traced_disk(clock: SimClock) -> SimDisk:
    return SimDisk(wren_iv(SMALL_DEVICE), clock, trace=TraceRecorder())


def small_lfs_config(**overrides) -> LfsConfig:
    defaults = dict(
        segment_size=256 * KIB,
        cache_bytes=2 * MIB,
        max_inodes=4096,
    )
    defaults.update(overrides)
    return LfsConfig(**defaults)


def small_ffs_config(**overrides) -> FfsConfig:
    defaults = dict(
        cg_bytes=8 * MIB,
        inodes_per_cg=512,
        cache_bytes=2 * MIB,
    )
    defaults.update(overrides)
    return FfsConfig(**defaults)


@pytest.fixture
def lfs(disk: SimDisk, cpu: CpuModel) -> LogStructuredFS:
    return LogStructuredFS.mkfs(disk, cpu, small_lfs_config())


@pytest.fixture
def ffs(disk: SimDisk, cpu: CpuModel) -> FastFileSystem:
    return FastFileSystem.mkfs(disk, cpu, small_ffs_config())


@pytest.fixture(params=["lfs", "ffs"])
def anyfs(request, disk: SimDisk, cpu: CpuModel):
    """Parametrized fixture: the same test runs against both systems."""
    if request.param == "lfs":
        return LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
    return FastFileSystem.mkfs(disk, cpu, small_ffs_config())
