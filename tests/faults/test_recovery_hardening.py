"""End-to-end hardening tests: checkpoint fallback, roll-forward under
log-tail damage, and cleaner-side quarantine of unreadable segments."""

import pytest

from repro.disk.geometry import wren_iv
from repro.disk.sim_disk import SimDisk
from repro.errors import CheckpointError
from repro.faults import FaultConfig, FaultInjector, FaultyDevice
from repro.lfs.checkpoint import CheckpointData, CheckpointManager
from repro.lfs.config import LfsConfig, LfsLayout
from repro.lfs.filesystem import LogStructuredFS
from repro.lfs.segments import LogPosition
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel
from repro.units import MIB
from tests.conftest import small_lfs_config


def faulty_rig(total_bytes=32 * MIB, config=None):
    """A small LFS whose device takes injected faults."""
    geometry = wren_iv(total_bytes)
    clock = SimClock()
    cpu = CpuModel(clock)
    injector = FaultInjector(config or FaultConfig.none())
    device = FaultyDevice(
        geometry.num_sectors, geometry.sector_size, injector=injector
    )
    disk = SimDisk(geometry, clock, device=device)
    fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
    return fs, device, injector


def make_data(timestamp: float, seq: int = 5) -> CheckpointData:
    return CheckpointData(
        timestamp=timestamp,
        position=LogPosition(
            active_segment=2, active_offset=17, next_segment=3, sequence=seq
        ),
        imap_addrs=[0, 100, 200],
        usage_addrs=[300],
    )


class TestCheckpointFallback:
    def make_manager(self):
        clock = SimClock()
        geometry = wren_iv(64 * MIB)
        injector = FaultInjector()
        device = FaultyDevice(
            geometry.num_sectors, geometry.sector_size, injector=injector
        )
        disk = SimDisk(geometry, clock, device=device)
        config = LfsConfig()
        layout = LfsLayout.for_device(config, device.total_bytes)
        return CheckpointManager(layout, disk, clock), device, injector

    def test_bit_flip_in_newest_region_falls_back(self):
        manager, device, _injector = self.make_manager()
        manager.write(make_data(1.0))
        manager.write(make_data(2.0, seq=6))  # newest, region 1
        device.flip_bit(manager._region_sector(1) + 1, bit=3)
        loaded, region = manager.load_latest()
        assert loaded.timestamp == 1.0
        assert region == 0
        assert manager.last_load_rejects == 1

    def test_unreadable_region_falls_back(self):
        manager, _device, injector = self.make_manager()
        manager.write(make_data(1.0))
        manager.write(make_data(2.0, seq=6))
        injector.mark_unreadable(manager._region_sector(1))
        loaded, region = manager.load_latest()
        assert loaded.timestamp == 1.0
        assert region == 0
        assert manager.last_load_rejects == 1

    def test_both_regions_bad_raises_with_reasons(self):
        manager, device, injector = self.make_manager()
        manager.write(make_data(1.0))
        manager.write(make_data(2.0, seq=6))
        injector.mark_unreadable(manager._region_sector(0))
        device.flip_bit(manager._region_sector(1) + 1, bit=0)
        with pytest.raises(CheckpointError) as excinfo:
            manager.load_latest()
        message = str(excinfo.value)
        assert "region 0" in message and "region 1" in message

    def test_end_to_end_mount_survives_corrupt_newest_region(self):
        fs, device, _injector = faulty_rig()
        fs.write_file("/keep", b"k" * 2000)
        fs.checkpoint()
        newest = 1 - fs.checkpoints._next_region  # region just written
        device.flip_bit(fs.checkpoints._region_sector(newest) + 2, bit=1)
        fs.crash()
        device.revive()
        again = LogStructuredFS.mount(fs.disk, fs.cpu, small_lfs_config())
        assert again.checkpoints.last_load_rejects == 1
        assert again.read_file("/keep") == b"k" * 2000


class TestRollForwardUnderDamage:
    def test_corrupt_summary_ends_scan_instead_of_crashing(self):
        fs, device, _injector = faulty_rig()
        fs.write_file("/base", b"base")
        fs.checkpoint()
        tail_seg = fs.segments.position.active_segment
        tail_offset = fs.segments.position.active_offset
        fs.write_file("/tail", b"t" * 4000)
        fs.sync()
        # Flip a bit inside the tail partial's summary block: its CRC
        # fails, so recovery must treat the log as ending there.
        first_block = fs.layout.segment_first_block(tail_seg) + tail_offset
        device.flip_bit(first_block * fs.config.sectors_per_block, bit=9)
        fs.crash()
        device.revive()
        again = LogStructuredFS.mount(fs.disk, fs.cpu, small_lfs_config())
        assert again.last_recovery.partials_applied == 0
        assert again.read_file("/base") == b"base"
        assert not again.exists("/tail")

    def test_unreadable_summary_stops_scan_with_media_reason(self):
        fs, device, injector = faulty_rig()
        fs.write_file("/base", b"base")
        fs.checkpoint()
        tail_seg = fs.segments.position.active_segment
        tail_offset = fs.segments.position.active_offset
        fs.write_file("/tail", b"t" * 4000)
        fs.sync()
        first_block = fs.layout.segment_first_block(tail_seg) + tail_offset
        injector.mark_unreadable(first_block * fs.config.sectors_per_block)
        fs.crash()
        device.revive()
        again = LogStructuredFS.mount(fs.disk, fs.cpu, small_lfs_config())
        assert again.last_recovery.stop_reason == "media-error"
        assert again.last_recovery.media_errors == 1
        assert again.last_recovery.degraded
        assert again.read_file("/base") == b"base"

    def test_valid_tail_still_recovers_on_faulty_device(self):
        fs, device, _injector = faulty_rig()
        fs.checkpoint()
        fs.write_file("/after", b"A" * 5000)
        fs.sync()
        fs.crash()
        device.revive()
        again = LogStructuredFS.mount(fs.disk, fs.cpu, small_lfs_config())
        assert again.last_recovery.partials_applied >= 1
        assert not again.last_recovery.degraded
        assert again.read_file("/after") == b"A" * 5000


class TestCleanerQuarantine:
    def test_unreadable_live_block_quarantines_segment(self):
        fs, _device, injector = faulty_rig()
        # Several dirty segments with live data in each.
        for i in range(30):
            fs.write_file(f"/f{i}", bytes([i]) * 20_000)
        fs.checkpoint()
        dirty = fs.usage.dirty_segments()
        assert dirty
        victim = dirty[0]
        first_block = fs.layout.segment_first_block(victim)
        # Kill a whole block's worth of sectors mid-segment so the
        # cleaner's relocation read cannot succeed.
        spb = fs.config.sectors_per_block
        for sector in range(first_block * spb + spb, first_block * spb + 2 * spb):
            injector.mark_unreadable(sector)
        target = fs.usage.clean_count() + len(dirty)
        fs.clean_now(target)
        assert fs.cleaner.stats.segments_quarantined >= 1
        assert victim in fs.usage.quarantined_segments()
        # A quarantined segment is out of circulation for good.
        assert victim not in fs.usage.dirty_segments()
        assert victim not in fs.usage.clean_segments()
        fs.clean_now(target)
        assert fs.usage.quarantined_segments().count(victim) == 1
