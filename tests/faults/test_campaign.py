"""The crash campaign's own contract: every seeded trial survives.

The hypothesis test is the PR's core robustness claim — for *any* seed,
a trial either remounts cleanly or reports the damage through typed
channels; it never ends in an unhandled exception.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import run_campaign, run_trial
from repro.obs import Telemetry
from repro.units import MIB

SMALL_TRIAL = dict(device_bytes=16 * MIB)


class TestTrialContract:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_any_seed_survives(self, seed):
        result = run_trial(0, seed, **SMALL_TRIAL)
        assert result.survived, result.detail
        if result.outcome in ("detected", "mount-failed"):
            assert result.signals

    def test_trials_are_deterministic(self):
        first = run_trial(3, seed=7, **SMALL_TRIAL)
        second = run_trial(3, seed=7, **SMALL_TRIAL)
        assert first.outcome == second.outcome
        assert first.signals == second.signals
        assert first.faults == second.faults

    def test_clean_trial_reports_no_signals(self):
        # Find a seed whose trial 0 draws a fault-free config (cheap:
        # replays only the config draw) and check it classifies clean.
        import random

        from repro.faults.campaign import _random_fault_config

        seed = next(
            s
            for s in range(1000)
            if not _random_fault_config(
                random.Random(f"crashtest-{s}-0")
            ).any_faults
        )
        result = run_trial(0, seed, **SMALL_TRIAL)
        assert not result.config.any_faults
        assert result.outcome == "clean"
        assert not result.signals


class TestCampaign:
    def test_small_campaign_survives_and_aggregates(self):
        telemetry = Telemetry()
        report = run_campaign(
            trials=8, seed=0, telemetry=telemetry, **SMALL_TRIAL
        )
        assert report.survived_all
        assert len(report.trials) == 8
        counted = sum(
            report.count(o)
            for o in ("clean", "detected", "mount-failed", "unhandled")
        )
        assert counted == 8
        # Aggregated totals match the telemetry the injectors shared.
        by_name = {
            m["name"]: m.get("value")
            for m in telemetry.registry.to_dict()["metrics"]
        }
        assert by_name["disk.fault.bit_flips"] == report.bit_flips
        assert by_name["disk.fault.torn_writes"] == report.torn_writes

    def test_render_mentions_survival(self):
        report = run_campaign(trials=2, seed=5, **SMALL_TRIAL)
        text = report.render()
        assert "survival: OK" in text
        assert "2 trials" in text

    def test_parallel_campaign_is_byte_identical(self):
        lines_seq, lines_par = [], []
        telemetry_seq, telemetry_par = Telemetry(), Telemetry()
        sequential = run_campaign(
            trials=4,
            seed=11,
            telemetry=telemetry_seq,
            log=lines_seq.append,
            jobs=1,
            **SMALL_TRIAL,
        )
        parallel = run_campaign(
            trials=4,
            seed=11,
            telemetry=telemetry_par,
            log=lines_par.append,
            jobs=2,
            **SMALL_TRIAL,
        )
        assert parallel.render() == sequential.render()
        assert lines_par == lines_seq
        assert [t.signals for t in parallel.trials] == [
            t.signals for t in sequential.trials
        ]
        # The telemetry merge is order-independent and complete: the
        # merged counters equal the single-process recording.
        seq_metrics = {
            (m["name"], tuple(sorted(m.get("labels", {}).items()))): m.get(
                "value"
            )
            for m in telemetry_seq.registry.to_dict()["metrics"]
            if m.get("kind") == "counter"
        }
        par_metrics = {
            (m["name"], tuple(sorted(m.get("labels", {}).items()))): m.get(
                "value"
            )
            for m in telemetry_par.registry.to_dict()["metrics"]
            if m.get("kind") == "counter"
        }
        assert par_metrics == seq_metrics
