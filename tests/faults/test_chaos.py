"""Crash-under-load chaos campaign and durability-contract checker."""

from repro.faults.chaos import (
    INSTANTS,
    ChaosReport,
    ChaosTrialResult,
    CrashPlan,
    CrashSignal,
    DurabilityLedger,
    run_chaos_campaign,
    run_chaos_trial,
)
from repro.harness.parallel import export_telemetry_totals
from repro.lfs.config import LfsConfig
from repro.lfs.filesystem import make_lfs
from repro.obs import Telemetry
from repro.service.config import ServiceConfig
from repro.service.scheduler import RequestScheduler
from repro.units import KIB, MIB

# Small-but-real campaign shape used across this module: fast enough
# for tier-1, large enough that every instant actually fires.
SMALL = dict(clients=4, requests_per_client=40)


class TestDurabilityLedger:
    def test_create_write_unlink_history(self):
        ledger = DurabilityLedger()
        ledger.note_create("/f", 7)
        ledger.note_write("/f", 0, b"hello")
        ledger.note_write("/f", 5, b" world")
        ledger.note_unlink("/f")
        record = ledger.records["/f"]
        # absent -> empty -> "hello" -> "hello world" -> absent
        assert len(record.states) == 5
        assert record.sizes == [0, 0, 5, 11, 0]
        assert record.states[-1] == "absent"

    def test_sparse_write_zero_fills_the_gap(self):
        ledger = DurabilityLedger()
        ledger.note_create("/f", 1)
        ledger.note_write("/f", 4, b"xy")
        record = ledger.records["/f"]
        assert bytes(record.shadow) == b"\x00\x00\x00\x00xy"

    def test_barrier_advances_every_floor(self):
        ledger = DurabilityLedger()
        ledger.note_create("/a", 1)
        ledger.note_write("/a", 0, b"one")
        ledger.note_create("/b", 2)
        ledger.note_barrier()
        assert ledger.barriers == 1
        for record in ledger.records.values():
            assert record.floor == record.last_index
        ledger.note_write("/a", 0, b"two")
        assert ledger.records["/a"].floor == ledger.records["/a"].last_index - 1

    def test_ack_records_state_index_and_trace_root(self):
        ctx = type("Ctx", (), {"root_id": 42})()
        ledger = DurabilityLedger()
        ledger.note_create("/f", 3)
        ledger.note_write("/f", 0, b"data")
        ledger.note_ack("/f", 3, 1.5, ctx)
        (ack,) = ledger.acks
        assert ack.state_index == ledger.records["/f"].last_index
        assert ack.trace_root == 42
        assert ack.ack_time == 1.5

    def test_check_accepts_any_state_at_or_above_floor(self):
        fs = make_lfs(total_bytes=8 * MIB)
        ledger = DurabilityLedger()
        handle = fs.create("/f")
        ledger.note_create("/f", handle.inum)
        with handle:
            handle.write(b"v1")
        ledger.note_write("/f", 0, b"v1")
        # Ledger moves ahead of the fs: the recorded v2 never lands.
        ledger.note_write("/f", 0, b"v2")
        assert ledger.check(fs) == []  # v1 is >= floor 0: admissible
        violations = ledger.check(fs, require_latest=True)
        assert len(violations) == 1
        assert "/f" in violations[0]
        fs.unmount()

    def test_check_rejects_state_below_the_floor(self):
        fs = make_lfs(total_bytes=8 * MIB)
        ledger = DurabilityLedger()
        handle = fs.create("/f")
        ledger.note_create("/f", handle.inum)
        with handle:
            handle.write(b"old")
        ledger.note_write("/f", 0, b"old")
        ledger.note_write("/f", 0, b"new")
        ledger.note_barrier()  # "new" is now promised durable
        violations = ledger.check(fs)  # fs still holds "old"
        assert len(violations) == 1
        assert "floor" in violations[0]
        fs.unmount()

    def test_reconcile_restarts_history_at_observed_state(self):
        fs = make_lfs(total_bytes=8 * MIB)
        ledger = DurabilityLedger()
        handle = fs.create("/f")
        ledger.note_create("/f", handle.inum)
        with handle:
            handle.write(b"kept")
        ledger.note_write("/f", 0, b"kept")
        ledger.note_write("/f", 0, b"lost")
        ledger.note_create("/gone", 99)  # never reached the fs
        ledger.reconcile(fs)
        assert ledger.check(fs, require_latest=True) == []
        assert ledger.records["/gone"].states == ["absent"]
        assert ledger.records["/f"].floor == 0
        fs.unmount()


class TestCrashPlan:
    def _rig(self):
        import random

        fs = make_lfs(
            total_bytes=8 * MIB,
            config=LfsConfig(
                segment_size=256 * KIB, cache_bytes=2 * MIB
            ),
        )
        config = ServiceConfig(num_clients=1, requests_per_client=1)
        scheduler = RequestScheduler(fs, config)
        return fs, scheduler, random.Random(0)

    def test_rejects_unknown_instant(self):
        import pytest

        fs, scheduler, rng = self._rig()
        with pytest.raises(ValueError):
            CrashPlan("mid-everything", rng, fs, scheduler)
        fs.unmount()

    def test_disarm_restores_the_unwrapped_stack(self):
        fs, scheduler, rng = self._rig()
        for instant in INSTANTS:
            plan = CrashPlan(instant, rng, fs, scheduler)
            plan.disarm()
        # Shadowed bound methods live in instance __dict__; disarm must
        # leave none behind or the resumed run re-enters dead wrappers.
        for obj in (fs, fs.disk, fs.cleaner, scheduler.admission):
            for name in ("write", "fsync_many", "_relocate_live_blocks",
                         "pay_throttle"):
                assert name not in obj.__dict__
        fs.unmount()

    def test_fire_raises_crash_signal_and_marks_fired(self):
        import pytest

        fs, scheduler, rng = self._rig()
        plan = CrashPlan("mid-commit", rng, fs, scheduler)
        with pytest.raises(CrashSignal):
            plan._fire("test")
        assert plan.fired and plan.fired_detail == "test"
        plan.disarm()
        fs.unmount()


class TestChaosTrial:
    def test_trial_is_deterministic(self):
        a = run_chaos_trial(0, seed=7, **SMALL)
        b = run_chaos_trial(0, seed=7, **SMALL)
        assert a == b

    def test_instant_rotation_covers_all_four(self):
        assert [
            run_chaos_trial(t, seed=0, **SMALL).instant for t in range(4)
        ] == list(INSTANTS)

    # Pinned regressions: these exact trials each exposed a recovery
    # bug when the campaign first ran (see repro.lfs.recovery).
    def test_trial_2_tail_account_double_count(self):
        # Roll-forward re-added replayed partials' bytes to the tail
        # segment's live account; the resumed writer then tripped the
        # live <= capacity invariant.  Fixed by clamp_live.
        result = run_chaos_trial(2, seed=0, clients=8, requests_per_client=80)
        assert result.outcome == "passed", result.detail

    def test_trial_17_segment_its_own_successor(self):
        # Recovery restored next_segment == active_segment (stale chain
        # link and checkpointed pre-selection both pointed at the tail),
        # so the writer wrapped onto its own fresh data.
        result = run_chaos_trial(17, seed=0, clients=8, requests_per_client=80)
        assert result.outcome == "passed", result.detail

    def test_trial_14_stale_checkpoint_next_destroys_live_data(self):
        # The degenerate next-segment fallback trusted the checkpoint's
        # pre-selection, which the applied chain itself had consumed —
        # the resumed writer overwrote live, referenced blocks.
        result = run_chaos_trial(14, seed=0, clients=8, requests_per_client=80)
        assert result.outcome == "passed", result.detail


class TestChaosCampaign:
    def test_small_campaign_passes_and_covers_instants(self):
        report = run_chaos_campaign(trials=4, seed=0, **SMALL)
        assert report.passed_all, report.render()
        assert report.instants_covered
        assert all(t.fired for t in report.trials)
        assert sum(t.checks for t in report.trials) > 0
        assert sum(t.acked_fsyncs for t in report.trials) > 0

    def test_jobs_merge_is_byte_identical(self):
        t1, t2 = Telemetry(), Telemetry()
        r1 = run_chaos_campaign(trials=4, seed=0, telemetry=t1, jobs=1, **SMALL)
        r2 = run_chaos_campaign(trials=4, seed=0, telemetry=t2, jobs=2, **SMALL)
        assert r1.render() == r2.render()
        assert export_telemetry_totals(t1) == export_telemetry_totals(t2)

    def test_report_counts_failures(self):
        report = ChaosReport(seed=0, clients=1)
        report.trials.append(ChaosTrialResult(trial=0, instant="mid-clean"))
        report.trials.append(
            ChaosTrialResult(
                trial=1,
                instant="mid-commit",
                outcome="violated",
                violations=["/f: gone"],
                detail="1 durability violations",
            )
        )
        assert not report.passed_all
        assert len(report.failures) == 1
        rendered = report.render()
        assert "durability: VIOLATED" in rendered
        assert "/f: gone" in rendered
