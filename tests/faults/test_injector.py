"""Unit tests for the fault-injection policy and the faulty device."""

import pytest

from repro.disk.sim_disk import SimDisk
from repro.disk.geometry import wren_iv
from repro.errors import MediaError, TransientIOError
from repro.faults import FaultConfig, FaultInjector, FaultyDevice
from repro.sim.clock import SimClock
from repro.units import MIB, SECTOR_SIZE

NUM_SECTORS = 256


def make_device(config=None, seed=0):
    injector = FaultInjector(config or FaultConfig.none(), seed=seed)
    return FaultyDevice(NUM_SECTORS, SECTOR_SIZE, injector=injector)


class TestFaultConfig:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(torn_write_prob=1.5)
        with pytest.raises(ValueError):
            FaultConfig(transient_read_prob=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(bit_flip_sectors=-1)

    def test_none_injects_nothing(self):
        assert not FaultConfig.none().any_faults
        assert FaultConfig(bit_flip_sectors=1).any_faults


class TestTransientErrors:
    def test_retry_of_same_request_always_succeeds(self):
        device = make_device(FaultConfig(transient_read_prob=1.0))
        device.write(0, b"x" * SECTOR_SIZE, durable=True)
        with pytest.raises(TransientIOError):
            device.read(0, 1)
        # The identical retry is guaranteed to succeed.
        assert device.read(0, 1) == b"x" * SECTOR_SIZE
        # ...and the next fresh request fails again (prob = 1.0).
        with pytest.raises(TransientIOError):
            device.read(0, 1)
        assert device.injector.transient_errors == 2

    def test_different_request_is_not_the_armed_retry(self):
        device = make_device(FaultConfig(transient_read_prob=1.0))
        device.write(0, b"x" * SECTOR_SIZE * 2, durable=True)
        with pytest.raises(TransientIOError):
            device.read(0, 2)
        with pytest.raises(TransientIOError):
            device.read(0, 1)  # different shape: its own first issue
        assert device.read(0, 2) == b"x" * SECTOR_SIZE * 2


class TestBadSectors:
    def test_unreadable_sector_raises_typed_media_error(self):
        device = make_device()
        device.write(4, b"y" * SECTOR_SIZE, durable=True)
        device.injector.mark_unreadable(5)
        assert device.read(4, 1)  # untouched neighbors still readable
        with pytest.raises(MediaError) as excinfo:
            device.read(4, 4)
        assert excinfo.value.sector == 5
        assert device.injector.media_errors == 1

    def test_write_remaps_bad_sector(self):
        device = make_device()
        device.injector.mark_unreadable(7)
        device.write(7, b"z" * SECTOR_SIZE, durable=True)
        assert device.read(7, 1) == b"z" * SECTOR_SIZE
        assert device.injector.remaps == 1
        assert not device.injector.bad_sectors


class TestCrashDamage:
    def _crash_with(self, config, seed=0):
        device = make_device(config, seed=seed)
        # A durable base plus one pending multi-sector overwrite.
        device.write(0, b"A" * SECTOR_SIZE * 8, durable=True)
        device.write(0, b"B" * SECTOR_SIZE * 8, completion_time=10.0)
        device.crash(now=0.0)
        device.revive()
        return device

    def test_torn_write_keeps_prefix_only(self):
        device = self._crash_with(FaultConfig(torn_write_prob=1.0))
        data = bytes(device.read(0, 8))
        assert device.injector.torn_writes == 1
        keep = data.count(b"B"[0]) // SECTOR_SIZE
        assert 1 <= keep < 8
        # Strictly a prefix: B-sectors then A-sectors, nothing else.
        expected = b"B" * keep * SECTOR_SIZE + b"A" * (8 - keep) * SECTOR_SIZE
        assert data == expected

    def test_no_tear_without_probability(self):
        device = self._crash_with(FaultConfig.none())
        assert device.read(0, 8) == b"A" * SECTOR_SIZE * 8
        assert device.injector.torn_writes == 0

    def test_sync_writes_never_tear(self):
        device = make_device(FaultConfig(torn_write_prob=1.0))
        device.write(0, b"S" * SECTOR_SIZE * 8, durable=True)
        device.crash(now=0.0)
        device.revive()
        assert device.read(0, 8) == b"S" * SECTOR_SIZE * 8

    def test_bit_flips_and_bad_sectors_hit_written_space(self):
        device = self._crash_with(
            FaultConfig(bit_flip_sectors=2, grow_bad_sectors=2), seed=3
        )
        injector = device.injector
        assert injector.bit_flips == 2
        assert injector.bad_sectors_grown == len(injector.bad_sectors) >= 1
        assert all(s in device.written_sectors for s in injector.bad_sectors)

    def test_deterministic_across_runs(self):
        config = FaultConfig(
            torn_write_prob=0.5, bit_flip_sectors=2, grow_bad_sectors=2
        )
        first = self._crash_with(config, seed=42)
        second = self._crash_with(config, seed=42)
        assert first._data == second._data
        assert first.injector.bad_sectors == second.injector.bad_sectors


class TestTimingLayerRetries:
    def test_sim_disk_absorbs_transient_errors(self):
        clock = SimClock()
        geometry = wren_iv(4 * MIB)
        injector = FaultInjector(FaultConfig(transient_read_prob=1.0))
        device = FaultyDevice(
            geometry.num_sectors, geometry.sector_size, injector=injector
        )
        disk = SimDisk(geometry, clock, device=device)
        disk.write(0, b"q" * SECTOR_SIZE, sync=True)
        before = disk.busy_until
        assert disk.read(0, 1) == b"q" * SECTOR_SIZE
        assert disk.read_retries == 1
        assert disk.busy_until > before  # backoff landed on the timeline

    def test_media_error_propagates_through_sim_disk(self):
        clock = SimClock()
        geometry = wren_iv(4 * MIB)
        injector = FaultInjector()
        device = FaultyDevice(
            geometry.num_sectors, geometry.sector_size, injector=injector
        )
        disk = SimDisk(geometry, clock, device=device)
        disk.write(0, b"q" * SECTOR_SIZE, sync=True)
        injector.mark_unreadable(0)
        with pytest.raises(MediaError):
            disk.read(0, 1)
