"""Tests for unit helpers."""

import pytest

from repro.units import (
    KIB,
    MIB,
    SECTOR_SIZE,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    sectors_for,
)


class TestSectorsFor:
    def test_exact(self):
        assert sectors_for(1024) == 2

    def test_rounds_up(self):
        assert sectors_for(1) == 1
        assert sectors_for(513) == 2

    def test_zero(self):
        assert sectors_for(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sectors_for(-1)

    def test_custom_sector_size(self):
        assert sectors_for(4096, sector_size=4096) == 1


class TestFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(1536) == "1.5 KB"
        assert fmt_bytes(3 * MIB) == "3.0 MB"

    def test_fmt_rate(self):
        assert fmt_rate(1.3 * MIB).endswith("/s")

    def test_fmt_time_ranges(self):
        assert "us" in fmt_time(5e-6)
        assert "ms" in fmt_time(0.005)
        assert fmt_time(1.5) == "1.50 s"
        assert "min" in fmt_time(600)

    def test_fmt_time_negative(self):
        assert fmt_time(-0.005).startswith("-")

    def test_constants(self):
        assert KIB == 1024
        assert MIB == 1024 * 1024
        assert SECTOR_SIZE == 512
