"""Unit tests for the striped disk array (§2.1's RAID point)."""

import pytest

from repro.disk.array import StripedDisk
from repro.disk.geometry import wren_iv
from repro.errors import InvalidArgumentError, OutOfRangeError
from repro.sim.clock import SimClock
from repro.units import KIB, MIB


def make_array(num_disks=4, stripe=64 * KIB, clock=None):
    clock = clock or SimClock()
    return StripedDisk(wren_iv(32 * MIB), clock, num_disks, stripe)


class TestConstruction:
    def test_capacity_scales(self):
        array = make_array(num_disks=4)
        assert array.total_bytes == 4 * 32 * MIB

    def test_validation(self):
        with pytest.raises(InvalidArgumentError):
            make_array(num_disks=0)
        with pytest.raises(InvalidArgumentError):
            make_array(stripe=1000)


class TestDataIntegrity:
    def test_write_read_roundtrip(self):
        array = make_array()
        payload = bytes(range(256)) * 1024  # 256 KB spanning stripes
        array.write(100, payload, sync=True)
        assert array.read(100, len(payload) // 512) == payload

    def test_zero_write_rejected(self):
        with pytest.raises(OutOfRangeError):
            make_array().write(0, b"")

    def test_crash_semantics(self):
        array = make_array()
        array.write(0, b"a" * 4096, sync=False)  # in flight
        array.crash()
        array.revive()
        assert array.read(0, 8) == b"\x00" * 4096

    def test_sync_write_durable_across_crash(self):
        array = make_array()
        array.write(0, b"b" * 4096, sync=True)
        array.crash()
        array.revive()
        assert array.read(0, 8) == b"b" * 4096


class TestParallelism:
    def test_large_write_faster_than_single_disk(self):
        from repro.disk.sim_disk import SimDisk

        clock_one = SimClock()
        single = SimDisk(wren_iv(128 * MIB), clock_one)
        single.write(0, b"x" * MIB, sync=True)

        clock_many = SimClock()
        array = make_array(num_disks=4, clock=clock_many)
        array.write(0, b"x" * MIB, sync=True)

        # Four spindles share the transfer: near-4x for segment-sized
        # writes (minus per-member positioning).
        assert clock_many.now() < clock_one.now() / 2.5

    def test_small_write_not_faster(self):
        from repro.disk.sim_disk import SimDisk

        clock_one = SimClock()
        single = SimDisk(wren_iv(128 * MIB), clock_one)
        single.write(200000, b"x" * 8192, sync=True)

        clock_many = SimClock()
        array = make_array(num_disks=4, clock=clock_many)
        array.write(200000, b"x" * 8192, sync=True)

        # §2.1: "the access time for small disk accesses is not
        # substantially improved" — one seek either way.
        assert clock_many.now() > clock_one.now() * 0.8

    def test_members_have_independent_heads(self):
        array = make_array(num_disks=2, stripe=4 * KIB)
        # Back-to-back stripe-sized writes alternate members and stay
        # sequential on each.
        array.write(0, b"a" * 4096, sync=True)
        array.write(8, b"b" * 4096, sync=True)
        array.write(16, b"c" * 4096, sync=True)
        tiers = array.stats.tier_counts
        assert tiers.get("far", 0) <= 1  # only initial positioning

    def test_drain_waits_for_slowest_member(self):
        clock = SimClock()
        array = make_array(num_disks=2, clock=clock)
        array.write(0, b"x" * MIB, sync=False)
        target = array.busy_until
        array.drain()
        assert clock.now() == pytest.approx(target)


class TestFileSystemOnArray:
    def test_lfs_runs_on_array(self):
        from repro.lfs.filesystem import LogStructuredFS
        from repro.sim.cpu import CpuModel
        from tests.conftest import small_lfs_config

        clock = SimClock()
        array = make_array(num_disks=4, clock=clock)
        fs = LogStructuredFS.mkfs(array, CpuModel(clock), small_lfs_config())
        fs.mkdir("/d")
        fs.write_file("/d/f", b"striped!" * 1000)
        fs.unmount()
        again = LogStructuredFS.mount(array, CpuModel(clock), small_lfs_config())
        assert again.read_file("/d/f") == b"striped!" * 1000

    def test_ffs_runs_on_array(self):
        from repro.ffs.filesystem import FastFileSystem
        from repro.sim.cpu import CpuModel
        from tests.conftest import small_ffs_config

        clock = SimClock()
        array = make_array(num_disks=2, clock=clock)
        fs = FastFileSystem.mkfs(array, CpuModel(clock), small_ffs_config())
        fs.write_file("/f", b"on raid" * 500)
        fs.sync()
        assert fs.read_file("/f") == b"on raid" * 500
