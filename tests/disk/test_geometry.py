"""Unit tests for disk geometry parameters."""

import pytest

from repro.disk.geometry import (
    DiskGeometry,
    FAST_1990S_DISK,
    NULL_TIMING,
    WREN_IV,
    wren_iv,
)
from repro.units import MIB


class TestWrenIV:
    def test_paper_parameters(self):
        # §5: 1.3 MB/s max transfer, 17.5 ms average seek, ~300 MB fs.
        assert WREN_IV.bandwidth == pytest.approx(1.3 * MIB)
        assert WREN_IV.avg_seek == pytest.approx(0.0175)
        assert WREN_IV.total_bytes == 300 * MIB

    def test_custom_size(self):
        assert wren_iv(64 * MIB).num_sectors == 64 * MIB // 512


class TestValidation:
    def test_rejects_unaligned_total(self):
        with pytest.raises(ValueError):
            DiskGeometry(name="bad", total_bytes=1000)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            DiskGeometry(name="bad", total_bytes=1 * MIB, bandwidth=0)

    def test_rejects_negative_seek(self):
        with pytest.raises(ValueError):
            DiskGeometry(name="bad", total_bytes=1 * MIB, avg_seek=-1.0)


class TestDerived:
    def test_transfer_time(self):
        geometry = DiskGeometry(
            name="g", total_bytes=1 * MIB, bandwidth=1 * MIB
        )
        assert geometry.transfer_time(512 * 1024) == pytest.approx(0.5)

    def test_transfer_time_rejects_negative(self):
        with pytest.raises(ValueError):
            WREN_IV.transfer_time(-1)

    def test_request_gap_quarter_rotation(self):
        assert WREN_IV.request_gap == pytest.approx(WREN_IV.rotation / 4)

    def test_random_access_time(self):
        assert WREN_IV.random_access_time == pytest.approx(
            WREN_IV.avg_seek + WREN_IV.rotation / 2
        )

    def test_null_timing_is_free(self):
        assert NULL_TIMING.random_access_time == 0.0
        assert NULL_TIMING.transfer_time(10 * MIB) < 1e-6

    def test_fast_disk_faster_than_wren(self):
        assert FAST_1990S_DISK.bandwidth > WREN_IV.bandwidth
        assert FAST_1990S_DISK.avg_seek < WREN_IV.avg_seek
