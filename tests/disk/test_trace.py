"""Unit tests for trace capture and rendering."""

import pytest

from repro.disk.trace import AccessTier, TraceEvent, TraceRecorder


def make_event(
    sector=0,
    nsectors=8,
    is_write=True,
    sync=False,
    tier=AccessTier.FAR,
    label="x",
    issue=0.0,
    done=0.01,
) -> TraceEvent:
    return TraceEvent(
        issue_time=issue,
        complete_time=done,
        is_write=is_write,
        sector=sector,
        nsectors=nsectors,
        nbytes=nsectors * 512,
        sync=sync,
        tier=tier,
        label=label,
    )


class TestRecorder:
    def test_record_and_filter(self):
        trace = TraceRecorder()
        trace.record(make_event(is_write=True, sync=True))
        trace.record(make_event(is_write=True, sync=False))
        trace.record(make_event(is_write=False))
        assert len(trace.events) == 3
        assert len(trace.writes()) == 2
        assert len(trace.reads()) == 1
        assert len(trace.sync_writes()) == 1

    def test_disabled_recorder_drops(self):
        trace = TraceRecorder(enabled=False)
        trace.record(make_event())
        assert trace.events == []

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(make_event())
        trace.clear()
        assert trace.events == []

    def test_random_requests(self):
        trace = TraceRecorder()
        trace.record(make_event(tier=AccessTier.SEQUENTIAL))
        trace.record(make_event(tier=AccessTier.NEAR))
        trace.record(make_event(tier=AccessTier.FAR))
        assert len(trace.random_requests()) == 2

    def test_span(self):
        events = [
            make_event(issue=1.0, done=2.0),
            make_event(issue=3.0, done=5.0),
        ]
        assert TraceRecorder.span(events) == pytest.approx(4.0)
        assert TraceRecorder.span([]) is None


class TestRendering:
    def test_table_contains_labels(self):
        trace = TraceRecorder()
        trace.record(make_event(label="inode write", sync=True))
        table = trace.table()
        assert "inode write" in table
        assert "sync" in table

    def test_table_only_writes(self):
        trace = TraceRecorder()
        trace.record(make_event(is_write=False, label="a read"))
        assert "a read" not in trace.table(only_writes=True)

    def test_disk_image_marks_sync_and_async(self):
        trace = TraceRecorder()
        trace.record(make_event(sector=0, sync=True))
        trace.record(make_event(sector=500, sync=False))
        image = trace.disk_image(num_sectors=1000, width=10)
        assert image[0] == "S"
        assert image[5] == "w"
        assert image.count(".") == 8

    def test_disk_image_sync_wins_over_async(self):
        trace = TraceRecorder()
        trace.record(make_event(sector=0, sync=False))
        trace.record(make_event(sector=0, sync=True))
        image = trace.disk_image(num_sectors=1000, width=10)
        assert image[0] == "S"

    def test_disk_image_validates_args(self):
        trace = TraceRecorder()
        with pytest.raises(ValueError):
            trace.disk_image(0)

    def test_event_describe(self):
        event = make_event(label="hello", sync=True)
        text = event.describe()
        assert "write" in text and "sync" in text and "hello" in text

    def test_duration(self):
        assert make_event(issue=1.0, done=1.5).duration == pytest.approx(0.5)
