"""Unit tests for the disk timing model."""

import pytest

from repro.disk.geometry import wren_iv
from repro.disk.sim_disk import SimDisk
from repro.disk.trace import AccessTier, TraceRecorder
from repro.sim.clock import SimClock
from repro.units import KIB, MIB


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def disk(clock):
    return SimDisk(wren_iv(64 * MIB), clock)


class TestServiceTime:
    def test_sequential_cheaper_than_far(self, disk):
        far, far_tier = disk.service_time(100000, 4 * KIB)
        disk._head_pos = 100000
        seq, seq_tier = disk.service_time(100000, 4 * KIB)
        assert seq < far
        assert far_tier is AccessTier.FAR
        assert seq_tier is AccessTier.SEQUENTIAL

    def test_near_between_seq_and_far(self, disk):
        geometry = disk.geometry
        disk._head_pos = 1000
        near, tier = disk.service_time(1000 + 100, 4 * KIB)
        assert tier is AccessTier.NEAR
        seq, _ = disk.service_time(1000, 4 * KIB)
        far, _ = disk.service_time(1000 + geometry.near_distance + 1, 4 * KIB)
        assert seq < near < far

    def test_transfer_scales_with_size(self, disk):
        small, _ = disk.service_time(0, 4 * KIB)
        large, _ = disk.service_time(0, 1 * MIB)
        expected = disk.geometry.transfer_time(1 * MIB - 4 * KIB)
        assert large - small == pytest.approx(expected)

    def test_large_sequential_dominated_by_bandwidth(self, disk):
        # The paper's segment-sizing rule: the seek must be amortized.
        duration, _ = disk.service_time(10**5, 1 * MIB)
        positioning = disk.geometry.random_access_time
        assert positioning / duration < 0.05


class TestSyncVsAsync:
    def test_sync_write_blocks_caller(self, disk, clock):
        disk.write(0, b"x" * 4096, sync=True)
        assert clock.now() > 0.0

    def test_async_write_does_not_block(self, disk, clock):
        disk.write(0, b"x" * 4096, sync=False)
        assert clock.now() == 0.0
        assert disk.busy_until > 0.0

    def test_read_blocks_caller(self, disk, clock):
        disk.read(0, 8)
        assert clock.now() > 0.0

    def test_read_waits_for_queued_writes(self, disk, clock):
        disk.write(0, b"x" * 1 * MIB, sync=False)
        write_done = disk.busy_until
        disk.read(0, 8)
        assert clock.now() > write_done

    def test_drain_advances_to_busy_until(self, disk, clock):
        disk.write(0, b"x" * 4096, sync=False)
        target = disk.busy_until
        disk.drain()
        assert clock.now() == pytest.approx(target)

    def test_queue_delay(self, disk, clock):
        assert disk.queue_delay() == 0.0
        disk.write(0, b"x" * 1 * MIB, sync=False)
        assert disk.queue_delay() > 0.0

    def test_idle_flag(self, disk):
        assert disk.idle
        disk.write(0, b"x" * 4096, sync=False)
        assert not disk.idle
        disk.drain()
        assert disk.idle


class TestStats:
    def test_counts_and_bytes(self, disk):
        disk.write(0, b"x" * 4096, sync=True)
        disk.read(0, 8)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 1
        assert disk.stats.bytes_written == 4096
        assert disk.stats.bytes_read == 4096
        assert disk.stats.sync_requests == 2  # reads always sync

    def test_tier_counts(self, disk):
        disk.write(0, b"x" * 4096)  # head starts at 0: sequential
        disk.write(8, b"x" * 4096)  # sequential
        disk.write(100000, b"x" * 4096)  # far
        tiers = disk.stats.tier_counts
        assert tiers.get("sequential") == 2
        assert tiers.get("far") == 1

    def test_delta_since(self, disk):
        disk.write(0, b"x" * 4096)
        before = disk.stats.copy()
        disk.write(8, b"x" * 4096)
        delta = disk.stats.delta_since(before)
        assert delta.writes == 1
        assert delta.bytes_written == 4096


    def test_vectored_reads_counted(self, disk):
        disk.write(0, b"x" * 4096, sync=True)
        disk.read(0, 8)
        assert disk.vectored_reads == 0
        disk.read(0, 8, vectored=True)
        disk.read(8, 8, vectored=True)
        assert disk.vectored_reads == 2


class TestCrash:
    def test_crash_drops_inflight_async_write(self, disk, clock):
        disk.write(0, b"y" * 4096, sync=False)
        disk.crash()  # clock never advanced: write incomplete
        disk.revive()
        assert disk.read(0, 8) == b"\x00" * 4096

    def test_crash_preserves_completed_write(self, disk, clock):
        disk.write(0, b"y" * 4096, sync=True)
        disk.crash()
        disk.revive()
        assert disk.read(0, 8) == b"y" * 4096


class TestTrace:
    def test_events_recorded(self, clock):
        trace = TraceRecorder()
        disk = SimDisk(wren_iv(64 * MIB), clock, trace=trace)
        disk.write(0, b"x" * 4096, sync=True, label="meta")
        disk.read(0, 8, label="back")
        assert len(trace.events) == 2
        write, read = trace.events
        assert write.is_write and write.sync and write.label == "meta"
        assert not read.is_write and read.label == "back"

    def test_geometry_validation(self, clock):
        geometry = wren_iv(64 * MIB)
        from repro.disk.device import SectorDevice

        tiny = SectorDevice(num_sectors=8)
        with pytest.raises(ValueError):
            SimDisk(geometry, clock, device=tiny)
