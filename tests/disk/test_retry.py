"""Transient-read retry policy on the disk timing layer."""

import pytest

from repro.disk.geometry import wren_iv
from repro.disk.retry import RetryPolicy
from repro.disk.sim_disk import SimDisk
from repro.errors import InvalidArgumentError, TransientIOError
from repro.faults.device import FaultyDevice
from repro.faults.injector import FaultConfig, FaultInjector
from repro.lfs.config import LfsConfig
from repro.sim.clock import SimClock
from repro.units import MIB


class TestRetryPolicy:
    def test_defaults_reproduce_the_historical_schedule(self):
        policy = RetryPolicy()
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.002, 0.004, 0.008]
        assert policy.max_attempts == 3

    def test_cap_bounds_every_delay(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=10.0, cap=0.05)
        assert policy.delay(1) == 0.01
        assert policy.delay(2) == 0.05
        assert policy.delay(9) == 0.05

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base_delay=-0.001),
            dict(multiplier=0.5),
            dict(base_delay=0.01, cap=0.005),
            dict(max_attempts=-1),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(InvalidArgumentError):
            RetryPolicy(**kwargs)

    def test_policy_rides_lfs_config(self):
        policy = RetryPolicy(base_delay=0.001, max_attempts=5)
        config = LfsConfig(retry=policy)
        assert config.retry is policy


def _faulty_disk(transient_prob, retry=None, seed=0):
    geometry = wren_iv(8 * MIB)
    injector = FaultInjector(
        FaultConfig(transient_read_prob=transient_prob), seed=seed
    )
    device = FaultyDevice(
        geometry.num_sectors, geometry.sector_size, injector=injector
    )
    clock = SimClock()
    disk = SimDisk(geometry, clock, device=device)
    if retry is not None:
        disk.retry = retry
    return disk, clock


class TestDiskRetryTiming:
    # The injector arms transient errors per request — the identical
    # retry succeeds — so a default policy always wins after one retry
    # and the error surfaces only when the budget is zero.

    def test_retry_wins_and_charges_the_stall_counter(self):
        disk, _clock = _faulty_disk(transient_prob=1.0)
        data = disk.read(0, 1)
        assert len(data) > 0  # the retry succeeded
        assert disk.read_retries == 1
        assert disk.retry_stall_seconds == pytest.approx(
            disk.retry.delay(1)
        )

    def test_zero_attempts_fails_immediately(self):
        disk, _clock = _faulty_disk(
            transient_prob=1.0, retry=RetryPolicy(max_attempts=0)
        )
        with pytest.raises(TransientIOError):
            disk.read(0, 1)
        assert disk.read_retries == 1  # the one probe that failed
        assert disk.retry_stall_seconds == 0.0

    def test_clean_reads_never_touch_the_retry_path(self):
        disk, _clock = _faulty_disk(transient_prob=0.0)
        disk.read(0, 1)
        assert disk.read_retries == 0
        assert disk.retry_stall_seconds == 0.0

    def test_backoff_advances_the_simulated_clock(self):
        patient = RetryPolicy(base_delay=0.5, multiplier=1.0, cap=0.5)
        disk, clock = _faulty_disk(transient_prob=1.0, retry=patient)
        disk.read(0, 1)
        disk.drain()
        assert clock.now() >= 0.5  # the retry's backoff is real time
