"""Unit tests for the crash-aware sector device."""

import pytest

from repro.disk.device import SectorDevice
from repro.errors import DeviceCrashedError, OutOfRangeError


@pytest.fixture
def device() -> SectorDevice:
    return SectorDevice(num_sectors=128)


class TestBasicIO:
    def test_fresh_device_reads_zeros(self, device):
        assert device.read(0, 2) == b"\x00" * 1024

    def test_write_then_read(self, device):
        payload = bytes(range(256)) * 2
        device.write(4, payload)
        assert device.read(4, 1) == payload

    def test_multi_sector_write(self, device):
        payload = b"ab" * 512  # two sectors
        device.write(10, payload)
        assert device.read(10, 2) == payload

    def test_read_out_of_range(self, device):
        with pytest.raises(OutOfRangeError):
            device.read(127, 2)
        with pytest.raises(OutOfRangeError):
            device.read(-1, 1)

    def test_zero_count_read_rejected(self, device):
        with pytest.raises(OutOfRangeError):
            device.read(0, 0)

    def test_unaligned_write_rejected(self, device):
        with pytest.raises(OutOfRangeError):
            device.write(0, b"x" * 100)

    def test_write_out_of_range(self, device):
        with pytest.raises(OutOfRangeError):
            device.write(127, b"x" * 1024)

    def test_counters(self, device):
        device.write(0, b"a" * 512)
        device.read(0, 1)
        device.read(0, 2)
        assert device.total_sectors_written == 1
        assert device.total_sectors_read == 3


class TestCrashSemantics:
    def test_crash_rolls_back_undurable_write(self, device):
        device.write(0, b"a" * 512, completion_time=5.0)
        device.crash(now=1.0)  # crash before the write completed
        device.revive()
        assert device.read(0, 1) == b"\x00" * 512

    def test_crash_keeps_completed_write(self, device):
        device.write(0, b"a" * 512, completion_time=5.0)
        device.crash(now=5.0)
        device.revive()
        assert device.read(0, 1) == b"a" * 512

    def test_rollback_is_ordered(self, device):
        device.write(0, b"a" * 512, completion_time=1.0)
        device.write(0, b"b" * 512, completion_time=3.0)
        device.crash(now=2.0)  # second write lost, first survives
        device.revive()
        assert device.read(0, 1) == b"a" * 512

    def test_overlapping_rollback_reverse_order(self, device):
        device.write(0, b"a" * 1024, completion_time=5.0)
        device.write(1, b"b" * 512, completion_time=6.0)
        device.crash(now=0.0)
        device.revive()
        assert device.read(0, 2) == b"\x00" * 1024

    def test_io_rejected_while_crashed(self, device):
        device.crash(now=0.0)
        with pytest.raises(DeviceCrashedError):
            device.read(0, 1)
        with pytest.raises(DeviceCrashedError):
            device.write(0, b"x" * 512)

    def test_revive_restores_io(self, device):
        device.write(0, b"z" * 512, completion_time=0.0)
        device.mark_durable(0.0)
        device.crash(now=1.0)
        device.revive()
        assert device.read(0, 1) == b"z" * 512

    def test_mark_durable_trims_pending(self, device):
        device.write(0, b"a" * 512, completion_time=1.0)
        device.write(1, b"b" * 512, completion_time=2.0)
        assert device.pending_writes() == 2
        device.mark_durable(1.5)
        assert device.pending_writes() == 1

    def test_reads_see_pending_writes(self, device):
        device.write(0, b"q" * 512, completion_time=100.0)
        assert device.read(0, 1) == b"q" * 512

    def test_snapshot_copies_image(self, device):
        device.write(0, b"s" * 512)
        image = device.snapshot()
        assert image[:512] == b"s" * 512
        assert len(image) == device.total_bytes


class TestConstruction:
    def test_rejects_zero_sectors(self):
        with pytest.raises(ValueError):
            SectorDevice(num_sectors=0)

    def test_rejects_bad_sector_size(self):
        with pytest.raises(ValueError):
            SectorDevice(num_sectors=8, sector_size=0)

    def test_total_bytes(self):
        assert SectorDevice(num_sectors=16, sector_size=512).total_bytes == 8192
