"""Unit tests for write-back triggers (§4.3.5)."""

import pytest

from repro.cache.block_cache import BlockCache
from repro.cache.writeback import (
    WritebackConfig,
    WritebackMonitor,
    WritebackReason,
)
from repro.common.inode import BlockKey, BlockKind
from repro.sim.clock import SimClock

BS = 4096


def key(index: int) -> BlockKey:
    return BlockKey(1, BlockKind.DATA, index)


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def cache():
    return BlockCache(capacity_bytes=8 * BS, block_size=BS)


class TestConfig:
    def test_defaults_match_paper(self):
        # §4.3.5: "The current LFS implementation uses a threshold of
        # 30 seconds."
        assert WritebackConfig().age_threshold == 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WritebackConfig(age_threshold=-1.0)
        with pytest.raises(ValueError):
            WritebackConfig(dirty_high_fraction=0.0)
        with pytest.raises(ValueError):
            WritebackConfig(dirty_high_fraction=1.5)


class TestTriggers:
    def test_quiet_cache_no_trigger(self, cache, clock):
        monitor = WritebackMonitor(cache, clock)
        assert monitor.check() is None

    def test_cache_full_trigger(self, cache, clock):
        monitor = WritebackMonitor(
            cache, clock, WritebackConfig(dirty_high_fraction=0.5)
        )
        for i in range(4):  # 4 of 8 blocks dirty = the threshold
            cache.insert(key(i), bytearray(BS), dirty=True, now=0.0)
        assert monitor.check() is WritebackReason.CACHE_FULL

    def test_below_threshold_no_trigger(self, cache, clock):
        monitor = WritebackMonitor(
            cache, clock, WritebackConfig(dirty_high_fraction=0.5)
        )
        for i in range(3):
            cache.insert(key(i), bytearray(BS), dirty=True, now=0.0)
        assert monitor.check() is None

    def test_age_trigger(self, cache, clock):
        monitor = WritebackMonitor(
            cache, clock, WritebackConfig(age_threshold=30.0)
        )
        cache.insert(key(0), bytearray(BS), dirty=True, now=clock.now())
        clock.advance(29.0)
        assert monitor.check() is None
        clock.advance(1.5)
        assert monitor.check() is WritebackReason.AGE

    def test_age_trigger_clears_after_clean(self, cache, clock):
        monitor = WritebackMonitor(cache, clock)
        cache.insert(key(0), bytearray(BS), dirty=True, now=clock.now())
        clock.advance(31.0)
        assert monitor.check() is WritebackReason.AGE
        cache.mark_clean(key(0))
        assert monitor.check() is None

    def test_trigger_counters(self, cache, clock):
        monitor = WritebackMonitor(cache, clock)
        cache.insert(key(0), bytearray(BS), dirty=True, now=clock.now())
        clock.advance(31.0)
        monitor.check()
        monitor.note_explicit(WritebackReason.SYNC)
        assert monitor.triggers[WritebackReason.AGE] == 1
        assert monitor.triggers[WritebackReason.SYNC] == 1


class TestNextAgeDeadline:
    def test_none_while_clean(self, cache, clock):
        monitor = WritebackMonitor(cache, clock)
        assert monitor.next_age_deadline() is None

    def test_tracks_oldest_dirty_block(self, cache, clock):
        monitor = WritebackMonitor(
            cache, clock, WritebackConfig(age_threshold=30.0)
        )
        clock.advance(5.0)
        cache.insert(key(0), bytearray(BS), dirty=True, now=clock.now())
        clock.advance(10.0)
        cache.insert(key(1), bytearray(BS), dirty=True, now=clock.now())
        assert monitor.next_age_deadline() == pytest.approx(35.0)

    def test_deadline_advances_when_oldest_cleaned(self, cache, clock):
        monitor = WritebackMonitor(
            cache, clock, WritebackConfig(age_threshold=30.0)
        )
        cache.insert(key(0), bytearray(BS), dirty=True, now=clock.now())
        clock.advance(10.0)
        cache.insert(key(1), bytearray(BS), dirty=True, now=clock.now())
        cache.mark_clean(key(0))
        assert monitor.next_age_deadline() == pytest.approx(40.0)


class TestExplicitFlushResetsTriggerState:
    """Satellite coverage: note_explicit + the flush it announces must
    leave the monitor quiescent — both the dirty-bytes threshold and
    the age clock restart from the post-flush dirty set."""

    def _dirty_to_threshold(self, cache, clock):
        for i in range(4):
            cache.insert(key(i), bytearray(BS), dirty=True, now=clock.now())

    def _explicit_flush(self, monitor, cache):
        """What fsync/sync do: note the trigger, then flush everything."""
        monitor.note_explicit(WritebackReason.SYNC)
        for block in list(cache.dirty_blocks()):
            cache.mark_clean(block.key)

    def test_threshold_trigger_resets_after_explicit_flush(
        self, cache, clock
    ):
        monitor = WritebackMonitor(
            cache, clock, WritebackConfig(dirty_high_fraction=0.5)
        )
        self._dirty_to_threshold(cache, clock)
        assert monitor.check() is WritebackReason.CACHE_FULL
        self._explicit_flush(monitor, cache)
        assert monitor.check() is None
        assert monitor.triggers[WritebackReason.SYNC] == 1
        # Re-dirtying must be able to re-arm the threshold trigger.
        self._dirty_to_threshold(cache, clock)
        assert monitor.check() is WritebackReason.CACHE_FULL
        assert monitor.triggers[WritebackReason.CACHE_FULL] == 2

    def test_age_clock_restarts_after_explicit_flush(self, cache, clock):
        monitor = WritebackMonitor(
            cache, clock, WritebackConfig(age_threshold=30.0)
        )
        cache.insert(key(0), bytearray(BS), dirty=True, now=clock.now())
        clock.advance(31.0)
        assert monitor.check() is WritebackReason.AGE
        self._explicit_flush(monitor, cache)
        assert monitor.check() is None
        assert monitor.next_age_deadline() is None
        # A block dirtied after the flush gets a fresh 30 s budget
        # measured from *its* dirty time, not the pre-flush epoch.
        cache.insert(key(1), bytearray(BS), dirty=True, now=clock.now())
        assert monitor.next_age_deadline() == pytest.approx(
            clock.now() + 30.0
        )
        clock.advance(29.0)
        assert monitor.check() is None
        clock.advance(2.0)
        assert monitor.check() is WritebackReason.AGE

    def test_explicit_flush_via_real_lfs_fsync(self):
        from repro import make_lfs

        fs = make_lfs(total_bytes=16 * 1024 * 1024)
        with fs.create("/f") as handle:
            handle.write(b"x" * BS)
            assert fs.monitor.next_age_deadline() is not None
            handle.fsync()
        assert fs.monitor.next_age_deadline() is None
        assert fs.monitor.check() is None
        assert fs.monitor.triggers[WritebackReason.SYNC] >= 1
