"""Unit tests for write-back triggers (§4.3.5)."""

import pytest

from repro.cache.block_cache import BlockCache
from repro.cache.writeback import (
    WritebackConfig,
    WritebackMonitor,
    WritebackReason,
)
from repro.common.inode import BlockKey, BlockKind
from repro.sim.clock import SimClock

BS = 4096


def key(index: int) -> BlockKey:
    return BlockKey(1, BlockKind.DATA, index)


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def cache():
    return BlockCache(capacity_bytes=8 * BS, block_size=BS)


class TestConfig:
    def test_defaults_match_paper(self):
        # §4.3.5: "The current LFS implementation uses a threshold of
        # 30 seconds."
        assert WritebackConfig().age_threshold == 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WritebackConfig(age_threshold=-1.0)
        with pytest.raises(ValueError):
            WritebackConfig(dirty_high_fraction=0.0)
        with pytest.raises(ValueError):
            WritebackConfig(dirty_high_fraction=1.5)


class TestTriggers:
    def test_quiet_cache_no_trigger(self, cache, clock):
        monitor = WritebackMonitor(cache, clock)
        assert monitor.check() is None

    def test_cache_full_trigger(self, cache, clock):
        monitor = WritebackMonitor(
            cache, clock, WritebackConfig(dirty_high_fraction=0.5)
        )
        for i in range(4):  # 4 of 8 blocks dirty = the threshold
            cache.insert(key(i), bytearray(BS), dirty=True, now=0.0)
        assert monitor.check() is WritebackReason.CACHE_FULL

    def test_below_threshold_no_trigger(self, cache, clock):
        monitor = WritebackMonitor(
            cache, clock, WritebackConfig(dirty_high_fraction=0.5)
        )
        for i in range(3):
            cache.insert(key(i), bytearray(BS), dirty=True, now=0.0)
        assert monitor.check() is None

    def test_age_trigger(self, cache, clock):
        monitor = WritebackMonitor(
            cache, clock, WritebackConfig(age_threshold=30.0)
        )
        cache.insert(key(0), bytearray(BS), dirty=True, now=clock.now())
        clock.advance(29.0)
        assert monitor.check() is None
        clock.advance(1.5)
        assert monitor.check() is WritebackReason.AGE

    def test_age_trigger_clears_after_clean(self, cache, clock):
        monitor = WritebackMonitor(cache, clock)
        cache.insert(key(0), bytearray(BS), dirty=True, now=clock.now())
        clock.advance(31.0)
        assert monitor.check() is WritebackReason.AGE
        cache.mark_clean(key(0))
        assert monitor.check() is None

    def test_trigger_counters(self, cache, clock):
        monitor = WritebackMonitor(cache, clock)
        cache.insert(key(0), bytearray(BS), dirty=True, now=clock.now())
        clock.advance(31.0)
        monitor.check()
        monitor.note_explicit(WritebackReason.SYNC)
        assert monitor.triggers[WritebackReason.AGE] == 1
        assert monitor.triggers[WritebackReason.SYNC] == 1
