"""Unit tests for the sequential readahead policy."""

import pytest

from repro.cache.readahead import ReadaheadPolicy
from repro.obs import Telemetry


@pytest.fixture
def policy() -> ReadaheadPolicy:
    return ReadaheadPolicy(window_blocks=8)


class TestSequentialDetection:
    def test_first_touch_never_prefetches(self, policy):
        assert policy.advise(1, 0, 15) == 0

    def test_continuation_opens_the_window(self, policy):
        policy.advise(1, 0, 3)
        assert policy.advise(1, 4, 7) == 8
        assert policy.stats.sequential_runs == 1

    def test_large_first_access_is_not_a_stream(self, policy):
        # A single big random chunk must not look sequential: the
        # acceptance criterion is zero readahead hits on random reads.
        assert policy.advise(1, 100, 131) == 0
        assert policy.advise(1, 40, 71) == 0  # jump: still not a stream
        assert policy.stats.sequential_runs == 0

    def test_break_resets_detection(self, policy):
        policy.advise(1, 0, 3)
        assert policy.advise(1, 4, 7) == 8
        assert policy.advise(1, 90, 93) == 0  # stream broke
        assert policy.advise(1, 94, 97) == 8  # new continuation
        assert policy.stats.sequential_runs == 2

    def test_streams_are_per_inode(self, policy):
        policy.advise(1, 0, 3)
        policy.advise(2, 50, 53)
        assert policy.advise(1, 4, 7) == 8
        assert policy.advise(2, 54, 57) == 8


class TestHitAccounting:
    def test_prefetched_blocks_count_once(self, policy):
        policy.advise(1, 0, 3)
        assert policy.advise(1, 4, 7) == 8  # window covers 8..15
        for lbn in range(8, 16):
            policy.note_prefetched(1, lbn)
        assert policy.stats.blocks_prefetched == 8
        policy.advise(1, 8, 15)
        assert policy.stats.hits == 8
        policy.advise(1, 16, 23)  # same blocks never double-count
        assert policy.stats.hits == 8

    def test_break_forfeits_outstanding_prefetches(self, policy):
        policy.advise(1, 0, 3)
        policy.advise(1, 4, 7)
        policy.note_prefetched(1, 8)
        policy.advise(1, 50, 53)  # jump away before touching block 8
        policy.advise(1, 54, 57)
        policy.advise(1, 58, 61)
        assert policy.stats.hits == 0

    def test_telemetry_counter_mirrors_hits(self):
        telemetry = Telemetry()
        policy = ReadaheadPolicy(window_blocks=4, telemetry=telemetry)
        policy.advise(1, 0, 1)
        policy.advise(1, 2, 3)
        policy.note_prefetched(1, 4)
        policy.advise(1, 4, 5)
        assert telemetry.registry.value("cache.readahead_hits") == 1
        assert telemetry.registry.value("cache.readahead_prefetched") == 1


class TestLifecycle:
    def test_disabled_policy_is_inert(self):
        policy = ReadaheadPolicy(window_blocks=0)
        assert not policy.enabled
        assert policy.advise(1, 0, 3) == 0
        assert policy.advise(1, 4, 7) == 0
        assert policy.stats.sequential_runs == 0

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            ReadaheadPolicy(window_blocks=-1)

    def test_forget_drops_stream_state(self, policy):
        policy.advise(1, 0, 3)
        policy.forget(1)
        assert policy.advise(1, 4, 7) == 0  # first touch again
