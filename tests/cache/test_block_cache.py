"""Unit tests for the block cache."""

import pytest

from repro.cache.block_cache import BlockCache
from repro.common.inode import BlockKey, BlockKind
from repro.errors import InvalidArgumentError

BS = 4096


def key(inum=1, kind=BlockKind.DATA, index=0) -> BlockKey:
    return BlockKey(inum, kind, index)


@pytest.fixture
def cache() -> BlockCache:
    return BlockCache(capacity_bytes=8 * BS, block_size=BS)


class TestLookup:
    def test_miss_returns_none(self, cache):
        assert cache.get(key()) is None
        assert cache.stats.misses == 1

    def test_insert_then_hit(self, cache):
        cache.insert(key(), bytearray(BS), dirty=False, now=0.0)
        assert cache.get(key()) is not None
        assert cache.stats.hits == 1

    def test_peek_does_not_count(self, cache):
        cache.insert(key(), bytearray(BS), dirty=False, now=0.0)
        cache.peek(key())
        assert cache.stats.hits == 0

    def test_contains(self, cache):
        assert not cache.contains(key())
        cache.insert(key(), bytearray(BS), dirty=False, now=0.0)
        assert cache.contains(key())

    def test_hit_rate(self, cache):
        cache.insert(key(), bytearray(BS), dirty=False, now=0.0)
        cache.get(key())
        cache.get(key(index=5))
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestDirtyTracking:
    def test_insert_dirty_counts(self, cache):
        cache.insert(key(), bytearray(BS), dirty=True, now=1.0)
        assert cache.dirty_bytes == BS

    def test_mark_dirty_and_clean(self, cache):
        cache.insert(key(), bytearray(BS), dirty=False, now=0.0)
        cache.mark_dirty(key(), now=2.0)
        assert cache.dirty_bytes == BS
        cache.mark_clean(key())
        assert cache.dirty_bytes == 0

    def test_mark_dirty_uncached_raises(self, cache):
        with pytest.raises(InvalidArgumentError):
            cache.mark_dirty(key(), now=0.0)

    def test_double_dirty_counts_once(self, cache):
        cache.insert(key(), bytearray(BS), dirty=True, now=0.0)
        cache.mark_dirty(key(), now=1.0)
        assert cache.dirty_bytes == BS

    def test_oldest_dirty_time(self, cache):
        assert cache.oldest_dirty_time() is None
        cache.insert(key(index=0), bytearray(BS), dirty=True, now=5.0)
        cache.insert(key(index=1), bytearray(BS), dirty=True, now=3.0)
        assert cache.oldest_dirty_time() == 5.0  # FIFO by dirty event

    def test_oldest_dirty_skips_cleaned(self, cache):
        cache.insert(key(index=0), bytearray(BS), dirty=True, now=1.0)
        cache.insert(key(index=1), bytearray(BS), dirty=True, now=2.0)
        cache.mark_clean(key(index=0))
        assert cache.oldest_dirty_time() == 2.0

    def test_dirty_blocks_iterates_only_dirty(self, cache):
        cache.insert(key(index=0), bytearray(BS), dirty=True, now=0.0)
        cache.insert(key(index=1), bytearray(BS), dirty=False, now=0.0)
        assert [b.key.index for b in cache.dirty_blocks()] == [0]

    def test_replacing_dirty_block_keeps_accounting(self, cache):
        cache.insert(key(), bytearray(BS), dirty=True, now=0.0)
        cache.insert(key(), bytearray(BS), dirty=True, now=1.0)
        assert cache.dirty_bytes == BS


class TestEviction:
    def test_clean_data_evicted_lru(self, cache):
        for i in range(10):  # capacity is 8 blocks
            cache.insert(key(index=i), bytearray(BS), dirty=False, now=0.0)
        assert len(cache) == 8
        assert not cache.contains(key(index=0))
        assert cache.contains(key(index=9))

    def test_dirty_blocks_never_evicted(self, cache):
        for i in range(10):
            cache.insert(key(index=i), bytearray(BS), dirty=True, now=0.0)
        assert len(cache) == 10
        assert cache.over_capacity()

    def test_pointer_blocks_not_evicted(self, cache):
        for i in range(10):
            cache.insert(
                key(kind=BlockKind.INDIRECT, index=i),
                [0] * (BS // 8),
                dirty=False,
                now=0.0,
            )
        assert len(cache) == 10

    def test_clean_inode_blocks_evictable(self, cache):
        for i in range(10):
            cache.insert(
                key(kind=BlockKind.INODE, index=i),
                bytearray(BS),
                dirty=False,
                now=0.0,
            )
        assert len(cache) == 8

    def test_lru_order_respects_access(self, cache):
        for i in range(8):
            cache.insert(key(index=i), bytearray(BS), dirty=False, now=0.0)
        cache.get(key(index=0))  # make block 0 most recent
        cache.insert(key(index=8), bytearray(BS), dirty=False, now=0.0)
        assert cache.contains(key(index=0))
        assert not cache.contains(key(index=1))


class TestDiscard:
    def test_discard(self, cache):
        cache.insert(key(), bytearray(BS), dirty=True, now=0.0)
        cache.discard(key())
        assert not cache.contains(key())
        assert cache.dirty_bytes == 0

    def test_discard_missing_is_noop(self, cache):
        cache.discard(key())

    def test_discard_file(self, cache):
        cache.insert(key(inum=1, index=0), bytearray(BS), dirty=True, now=0.0)
        cache.insert(key(inum=1, index=1), bytearray(BS), dirty=False, now=0.0)
        cache.insert(key(inum=2, index=0), bytearray(BS), dirty=False, now=0.0)
        assert cache.discard_file(1) == 2
        assert cache.contains(key(inum=2, index=0))
        assert len(cache) == 1


class TestDropClean:
    def test_drop_clean_keeps_dirty(self, cache):
        cache.insert(key(index=0), bytearray(BS), dirty=True, now=0.0)
        cache.insert(key(index=1), bytearray(BS), dirty=False, now=0.0)
        dropped = cache.drop_clean()
        assert dropped == 1
        assert cache.contains(key(index=0))

    def test_drop_clean_data_only(self, cache):
        cache.insert(
            key(kind=BlockKind.INDIRECT), [0] * (BS // 8), dirty=False, now=0.0
        )
        cache.insert(key(index=1), bytearray(BS), dirty=False, now=0.0)
        dropped = cache.drop_clean(metadata_too=False)
        assert dropped == 1
        assert cache.contains(key(kind=BlockKind.INDIRECT))


class TestPayloads:
    def test_as_bytes_pads_short_data(self, cache):
        block = cache.insert(key(), bytearray(b"abc"), dirty=False, now=0.0)
        data = block.as_bytes(BS)
        assert len(data) == BS
        assert data.startswith(b"abc")

    def test_as_bytes_serializes_pointers(self, cache):
        pointers = [7] * (BS // 8)
        block = cache.insert(
            key(kind=BlockKind.INDIRECT), pointers, dirty=False, now=0.0
        )
        data = block.as_bytes(BS)
        assert len(data) == BS
        assert data[:8] == (7).to_bytes(8, "little")

    def test_capacity_validation(self):
        with pytest.raises(InvalidArgumentError):
            BlockCache(capacity_bytes=100, block_size=BS)


class TestPerInodeIndex:
    """Pin the O(per-inode) discard_file index: dropping one file's
    blocks must not scan the whole cache, and the index must stay exact
    through insert/discard/eviction churn."""

    def test_index_tracks_inserts_and_discards(self, cache):
        for index in range(4):
            cache.insert(key(inum=1, index=index), bytearray(BS), dirty=False, now=0.0)
        cache.insert(key(inum=2, index=0), bytearray(BS), dirty=False, now=0.0)
        assert cache._by_inum[1] == {key(inum=1, index=i) for i in range(4)}
        cache.discard(key(inum=1, index=0))
        assert key(inum=1, index=0) not in cache._by_inum[1]
        assert cache.discard_file(1) == 3
        assert 1 not in cache._by_inum
        assert cache._by_inum[2] == {key(inum=2, index=0)}

    def test_discard_file_does_not_touch_other_inodes(self, cache):
        cache.insert(key(inum=1), bytearray(BS), dirty=False, now=0.0)
        cache.insert(key(inum=2), bytearray(BS), dirty=False, now=0.0)
        assert cache.discard_file(1) == 1
        assert cache.contains(key(inum=2))

    def test_eviction_maintains_index(self, cache):
        # Capacity is 8 blocks: inserting 10 clean data blocks evicts
        # the two oldest, which must also vanish from the inode index.
        for index in range(10):
            cache.insert(key(inum=7, index=index), bytearray(BS), dirty=False, now=0.0)
        assert len(cache) == 8
        assert cache._by_inum[7] == {
            key(inum=7, index=i) for i in range(2, 10)
        }


class TestLazyEviction:
    def test_evicts_oldest_clean_blocks_first(self, cache):
        for index in range(8):
            cache.insert(key(index=index), bytearray(BS), dirty=False, now=0.0)
        cache.get(key(index=0))  # refresh block 0
        cache.insert(key(index=8), bytearray(BS), dirty=False, now=0.0)
        assert cache.contains(key(index=0))
        assert not cache.contains(key(index=1))
        assert cache.stats.evictions == 1

    def test_skips_leading_dirty_blocks(self, cache):
        for index in range(4):
            cache.insert(key(index=index), bytearray(BS), dirty=True, now=0.0)
        for index in range(4, 9):
            cache.insert(key(index=index), bytearray(BS), dirty=False, now=0.0)
        # The dirty LRU prefix is not evictable; the first clean block is.
        assert all(cache.contains(key(index=i)) for i in range(4))
        assert not cache.contains(key(index=4))

    def test_all_dirty_cache_goes_over_capacity(self, cache):
        for index in range(9):
            cache.insert(key(index=index), bytearray(BS), dirty=True, now=0.0)
        assert len(cache) == 9
        assert cache.over_capacity()


class TestWriteInto:
    def test_matches_as_bytes_for_data(self, cache):
        block = cache.insert(
            key(), bytearray(b"\xabcd" * 64), dirty=False, now=0.0
        )
        out = bytearray(BS)
        block.write_into(memoryview(out), BS)
        assert bytes(out) == block.as_bytes(BS)

    def test_matches_as_bytes_for_pointers(self, cache):
        block = cache.insert(
            key(kind=BlockKind.INDIRECT), list(range(BS // 8)), dirty=False, now=0.0
        )
        out = bytearray(BS)
        block.write_into(memoryview(out), BS)
        assert bytes(out) == block.as_bytes(BS)

    def test_pads_stale_buffer_with_zeros(self, cache):
        block = cache.insert(key(), bytearray(b"xy"), dirty=False, now=0.0)
        out = bytearray(b"\xff" * BS)  # stale pooled buffer contents
        block.write_into(memoryview(out), BS)
        assert bytes(out[:2]) == b"xy"
        assert not any(out[2:])
