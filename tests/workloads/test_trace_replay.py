"""Tests for the trace parser and replayer."""

import pytest

from repro.errors import InvalidArgumentError
from repro.workloads.trace_replay import (
    parse_trace,
    replay,
    replay_text,
)


class TestParser:
    def test_full_grammar(self):
        text = """
        # a comment
        mkdir /src
        create /src/main.c 2048
        write /src/main.c 512 128
        read /src/main.c            # whole file
        read /src/main.c 0 4096
        truncate /src/main.c 100
        rename /src/main.c /src/old.c
        unlink /src/old.c
        rmdir /src
        sync
        """
        ops = parse_trace(text.splitlines())
        assert [op.op for op in ops] == [
            "mkdir", "create", "write", "read", "read", "truncate",
            "rename", "unlink", "rmdir", "sync",
        ]
        assert ops[1].length == 2048
        assert ops[2].offset == 512 and ops[2].length == 128
        assert ops[3].length == -1  # whole-file read
        assert ops[6].path2 == "/src/old.c"

    def test_unknown_op_rejected(self):
        with pytest.raises(InvalidArgumentError, match="unknown operation"):
            parse_trace(["chmod /x 777"])

    def test_malformed_args_rejected(self):
        with pytest.raises(InvalidArgumentError, match="malformed"):
            parse_trace(["write /x notanumber 5"])
        with pytest.raises(InvalidArgumentError, match="malformed"):
            parse_trace(["rename /only-one"])

    def test_blank_lines_and_comments_skipped(self):
        assert parse_trace(["", "   ", "# hi"]) == []


class TestReplay:
    def test_end_state_matches_trace(self, anyfs):
        result = replay_text(
            anyfs,
            """
            mkdir /a
            create /a/x 1000
            create /a/y 500
            write /a/x 1000 200
            unlink /a/y
            rename /a/x /a/z
            sync
            """,
        )
        assert anyfs.listdir("/a") == ["z"]
        assert anyfs.stat("/a/z").size == 1200
        assert result.operations == 7
        assert result.bytes_written == 1700
        assert result.counts["create"] == 2

    def test_read_accounting(self, anyfs):
        result = replay_text(
            anyfs,
            """
            create /f 4096
            read /f
            read /f 0 100
            """,
        )
        assert result.bytes_read == 4196

    def test_deterministic_payloads(self, anyfs):
        replay_text(anyfs, "create /f 64")
        first = anyfs.read_file("/f")
        anyfs.unlink("/f")
        replay_text(anyfs, "create /f 64")
        assert anyfs.read_file("/f") == first

    def test_elapsed_time_positive(self, anyfs):
        result = replay_text(anyfs, "create /f 100\nsync")
        assert result.elapsed_seconds > 0
        assert result.ops_per_second() > 0

    def test_same_trace_both_systems(self, clock, cpu):
        from repro.disk.geometry import wren_iv
        from repro.disk.sim_disk import SimDisk
        from repro.ffs.filesystem import FastFileSystem
        from repro.lfs.filesystem import LogStructuredFS
        from repro.units import MIB
        from tests.conftest import small_ffs_config, small_lfs_config

        trace = parse_trace(
            [
                "mkdir /d",
                *(f"create /d/f{i} {100 * i}" for i in range(1, 20)),
                *(f"unlink /d/f{i}" for i in range(1, 10)),
                "sync",
            ]
        )
        lfs = LogStructuredFS.mkfs(
            SimDisk(wren_iv(48 * MIB), clock), cpu, small_lfs_config()
        )
        ffs = FastFileSystem.mkfs(
            SimDisk(wren_iv(48 * MIB), clock), cpu, small_ffs_config()
        )
        replay(lfs, trace)
        replay(ffs, trace)
        assert lfs.listdir("/d") == ffs.listdir("/d")
        for name in lfs.listdir("/d"):
            assert lfs.read_file(f"/d/{name}") == ffs.read_file(f"/d/{name}")
