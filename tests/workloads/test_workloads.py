"""Tests for the workload generators."""

import pytest

from repro.errors import InvalidArgumentError
from repro.units import KIB, MIB
from repro.workloads.cleaning import run_cleaning_rate_test
from repro.workloads.generator import FileSizeSampler, ZipfPicker
from repro.workloads.largefile import PHASES, run_large_file_test
from repro.workloads.office import run_office_workload
from repro.workloads.smallfile import run_small_file_test
from tests.conftest import small_lfs_config


class TestSmallFile:
    def test_runs_and_verifies(self, anyfs):
        result = run_small_file_test(anyfs, num_files=50, file_size=1024)
        assert result.create_per_second > 0
        assert result.read_per_second > 0
        assert result.delete_per_second > 0
        # All files were deleted at the end.
        assert anyfs.listdir("/small") == []

    def test_detects_corruption(self, lfs):
        result = run_small_file_test(lfs, num_files=10, file_size=512)
        assert result.num_files == 10


class TestLargeFile:
    def test_all_phases_measured(self, lfs):
        result = run_large_file_test(
            lfs, file_bytes=2 * MIB, request_bytes=8 * KIB
        )
        assert set(result.seconds) == set(PHASES)
        for phase in PHASES:
            assert result.kb_per_second(phase) > 0

    def test_lfs_write_rate_pattern_independent(self, lfs):
        result = run_large_file_test(
            lfs, file_bytes=4 * MIB, request_bytes=8 * KIB
        )
        seq = result.kb_per_second("seq_write")
        rand = result.kb_per_second("rand_write")
        # §5.2: "LFS's write bandwidth is independent of how the file is
        # written" (random can exceed sequential via cache overwrites).
        assert rand >= seq * 0.8

    def test_file_contents_survive(self, lfs):
        run_large_file_test(lfs, file_bytes=1 * MIB, request_bytes=8 * KIB)
        assert lfs.stat("/big").size == 1 * MIB


class TestCleaningRate:
    def test_zero_utilization_free(self, disk, cpu):
        from repro.lfs.filesystem import LogStructuredFS

        fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
        point = run_cleaning_rate_test(fs, 0.0, fill_segments=6)
        assert point.segments_cleaned >= 6
        # Only the /churn directory's own metadata can still be live.
        assert point.live_blocks_copied <= 4

    def test_utilization_controls_liveness(self, disk, cpu):
        from repro.lfs.filesystem import LogStructuredFS

        fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
        point = run_cleaning_rate_test(fs, 0.5, fill_segments=6)
        assert point.measured_utilization == pytest.approx(0.5, abs=0.08)
        assert point.live_blocks_copied > 0

    def test_rejects_bad_utilization(self, lfs):
        with pytest.raises(InvalidArgumentError):
            run_cleaning_rate_test(lfs, 1.0)

    def test_net_rate_below_gross(self, disk, cpu):
        from repro.lfs.filesystem import LogStructuredFS

        fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
        point = run_cleaning_rate_test(fs, 0.6, fill_segments=6)
        seg = fs.config.segment_size
        assert point.clean_kb_per_second(seg) < point.gross_kb_per_second(seg)


class TestOffice:
    def test_steady_state_churn(self, anyfs):
        result = run_office_workload(
            anyfs, operations=400, target_population=60, seed=3
        )
        assert result.files_created > 0
        assert result.files_deleted > 0
        assert result.final_live_files <= 60
        assert result.ops_per_second > 0
        assert len(anyfs.listdir("/office")) == result.final_live_files

    def test_lfs_reports_write_cost(self, lfs):
        result = run_office_workload(lfs, operations=300, target_population=50)
        assert result.write_cost is not None
        assert result.write_cost > 0


class TestGenerators:
    def test_file_sizes_in_bands(self):
        sampler = FileSizeSampler(seed=1)
        sizes = sampler.sample_many(500)
        assert all(1 * KIB <= size <= 1024 * KIB for size in sizes)
        small = sum(1 for size in sizes if size <= 8 * KIB)
        assert small / len(sizes) > 0.6  # §3: mostly small files

    def test_deterministic(self):
        assert FileSizeSampler(seed=7).sample_many(20) == FileSizeSampler(
            seed=7
        ).sample_many(20)

    def test_bad_bands_rejected(self):
        with pytest.raises(InvalidArgumentError):
            FileSizeSampler(bands=[(0.5, 1024, 2048)])

    def test_zipf_skews_low(self):
        picker = ZipfPicker(seed=2)
        picks = [picker.pick(100) for _ in range(2000)]
        low = sum(1 for pick in picks if pick < 20)
        assert low / len(picks) > 0.4
        assert all(0 <= pick < 100 for pick in picks)

    def test_zipf_bounds(self):
        picker = ZipfPicker(seed=0)
        assert picker.pick(1) == 0
        with pytest.raises(InvalidArgumentError):
            picker.pick(0)
        with pytest.raises(InvalidArgumentError):
            ZipfPicker(skew=0)
