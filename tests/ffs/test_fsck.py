"""Tests for fsck: the whole-disk scan and repair (§4.4's contrast)."""


from repro.ffs.filesystem import FastFileSystem
from repro.ffs.fsck import fsck
from tests.conftest import small_ffs_config


def crash_and_revive(ffs):
    ffs.crash()
    ffs.disk.revive()


class TestCleanImage:
    def test_clean_after_unmount(self, ffs):
        ffs.mkdir("/d")
        ffs.write_file("/d/f", b"x" * 1000)
        ffs.unmount()
        report = fsck(ffs.disk)
        assert report.clean
        assert report.repairs() == 0
        assert report.allocated_inodes == 3  # root, /d, /d/f

    def test_scans_every_inode(self, ffs):
        ffs.unmount()
        report = fsck(ffs.disk)
        assert report.inodes_scanned == ffs.layout.max_inodes

    def test_duration_grows_with_device_size(self, clock, cpu):
        from repro.disk.geometry import wren_iv
        from repro.disk.sim_disk import SimDisk
        from repro.units import MIB

        durations = []
        for size in (32 * MIB, 128 * MIB):
            disk = SimDisk(wren_iv(size), clock)
            fs = FastFileSystem.mkfs(disk, cpu, small_ffs_config())
            fs.unmount()
            durations.append(fsck(disk).duration_seconds)
        assert durations[1] > durations[0] * 2


class TestCrashRepair:
    def test_lost_dir_block_leaves_orphan(self, ffs):
        # The inode reaches the disk synchronously at create time; if
        # the directory block write is lost, fsck reattaches the inode
        # under /lost+found.
        ffs.mkdir("/d")
        ffs.sync()
        # Write a file, then lose the async data of the dir update by
        # crashing with the dir block only in cache... simulate by
        # corrupting: create, sync, then zero the dir's data block.
        ffs.write_file("/d/f", b"data!")
        ffs.sync()
        inode = ffs._get_inode(ffs.stat("/d").inum)
        addr = ffs.block_map.get(inode, 0)
        ffs.disk.write(
            addr * ffs.sectors_per_block,
            b"\x00" * ffs.block_size,
            sync=True,
        )
        crash_and_revive(ffs)
        report = fsck(ffs.disk)
        assert report.orphans_reattached >= 1
        again = FastFileSystem.mount(ffs.disk, ffs.cpu, small_ffs_config())
        lost = again.listdir("/lost+found")
        assert len(lost) >= 1
        assert again.read_file(f"/lost+found/{lost[0]}") == b"data!"

    def test_stale_bitmaps_repaired(self, ffs):
        ffs.write_file("/f", b"b" * 8192)
        ffs.sync()
        ffs.write_file("/g", b"c" * 8192)  # dirties bitmaps again
        crash_and_revive(ffs)  # cg header write may be lost
        report = fsck(ffs.disk)
        assert report.bitmap_repairs >= 0  # never crashes
        again = FastFileSystem.mount(ffs.disk, ffs.cpu, small_ffs_config())
        assert again.read_file("/f") == b"b" * 8192

    def test_dangling_entry_removed(self, ffs):
        # A directory entry whose inode-table write was lost: zero the
        # inode slot behind the fs's back.
        ffs.write_file("/victim", b"v")
        ffs.sync()
        inum = ffs.stat("/victim").inum
        addr, slot = ffs.layout.inode_location(inum)
        from repro.common.inode import INODE_SIZE

        raw = bytearray(
            ffs.disk.read(addr * ffs.sectors_per_block, ffs.sectors_per_block)
        )
        raw[slot * INODE_SIZE : (slot + 1) * INODE_SIZE] = b"\x00" * INODE_SIZE
        ffs.disk.write(addr * ffs.sectors_per_block, bytes(raw), sync=True)
        crash_and_revive(ffs)
        report = fsck(ffs.disk)
        assert report.dangling_entries_removed == 1
        again = FastFileSystem.mount(ffs.disk, ffs.cpu, small_ffs_config())
        assert not again.exists("/victim")

    def test_fs_usable_after_repair(self, ffs):
        for i in range(30):
            ffs.write_file(f"/f{i}", bytes([i]) * 3000)
        ffs.sync()
        ffs.write_file("/late", b"L" * 8192)
        crash_and_revive(ffs)
        fsck(ffs.disk)
        again = FastFileSystem.mount(ffs.disk, ffs.cpu, small_ffs_config())
        for i in range(30):
            assert again.read_file(f"/f{i}") == bytes([i]) * 3000
        again.write_file("/new", b"after repair")
        assert again.read_file("/new") == b"after repair"

    def test_fsck_idempotent(self, ffs):
        ffs.write_file("/f", b"x" * 5000)
        crash_and_revive(ffs)
        fsck(ffs.disk)
        second = fsck(ffs.disk)
        assert second.clean

    def test_nlink_repair(self, ffs):
        ffs.mkdir("/d")
        ffs.write_file("/d/f", b"x")
        ffs.sync()
        # Corrupt root's nlink on disk.
        from repro.common.inode import Inode, INODE_SIZE
        from repro.vfs.base import ROOT_INUM

        addr, slot = ffs.layout.inode_location(ROOT_INUM)
        raw = bytearray(
            ffs.disk.read(addr * ffs.sectors_per_block, ffs.sectors_per_block)
        )
        inode = Inode.unpack(raw[slot * INODE_SIZE : (slot + 1) * INODE_SIZE])
        inode.nlink = 9
        raw[slot * INODE_SIZE : (slot + 1) * INODE_SIZE] = inode.pack()
        ffs.disk.write(addr * ffs.sectors_per_block, bytes(raw), sync=True)
        crash_and_revive(ffs)
        report = fsck(ffs.disk)
        assert report.nlink_repairs >= 1
