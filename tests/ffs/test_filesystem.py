"""Behavioural tests for the FFS baseline."""

import pytest

from repro.common.inode import NIL
from repro.ffs.filesystem import FastFileSystem, FfsSuperBlock
from tests.conftest import small_ffs_config


class TestSuperBlock:
    def test_roundtrip(self):
        superblock = FfsSuperBlock(
            block_size=8192,
            cg_bytes=8 * 1024 * 1024,
            inodes_per_cg=512,
            maxbpg=512,
            total_blocks=8192,
        )
        assert FfsSuperBlock.unpack(superblock.pack()) == superblock

    def test_bad_magic(self):
        from repro.errors import CorruptionError

        with pytest.raises(CorruptionError):
            FfsSuperBlock.unpack(b"\x00" * 8192)


class TestSynchronousMetadata:
    def test_create_issues_two_sync_writes(self, ffs):
        ffs.mkdir("/d")
        ffs.sync()
        sync_before = ffs.disk.stats.sync_requests
        ffs.create("/d/f").close()
        # §3.1 / Figure 1: the new inode block and the directory data
        # block are forced to disk.
        assert ffs.disk.stats.sync_requests == sync_before + 2

    def test_unlink_issues_two_sync_writes(self, ffs):
        ffs.write_file("/f", b"x")
        ffs.sync()
        sync_before = ffs.disk.stats.sync_requests
        ffs.unlink("/f")
        assert ffs.disk.stats.sync_requests == sync_before + 2

    def test_create_blocks_the_caller(self, ffs):
        ffs.sync()
        before = ffs.clock.now()
        ffs.create("/slow").close()
        # The caller waited at least one random disk access.
        assert ffs.clock.now() - before > ffs.disk.geometry.avg_seek

    def test_data_writes_are_delayed(self, ffs):
        with ffs.create("/f") as handle:
            writes_before = ffs.disk.stats.writes
            handle.write(b"d" * 8192)
            assert ffs.disk.stats.writes == writes_before


class TestPlacement:
    def test_data_allocated_at_write_time(self, ffs):
        with ffs.create("/f") as handle:
            handle.write(b"x" * 8192)
        inode = ffs._get_inode(ffs.stat("/f").inum)
        assert ffs.block_map.get(inode, 0) != NIL

    def test_update_in_place(self, ffs):
        ffs.write_file("/f", b"1" * 8192)
        inode = ffs._get_inode(ffs.stat("/f").inum)
        addr = ffs.block_map.get(inode, 0)
        ffs.sync()
        with ffs.open("/f") as handle:
            handle.pwrite(0, b"2" * 8192)
        ffs.sync()
        assert ffs.block_map.get(inode, 0) == addr  # same block reused

    def test_sequential_files_sequential_blocks(self, ffs):
        with ffs.create("/seq") as handle:
            handle.write(b"s" * 8192 * 6)
        inode = ffs._get_inode(ffs.stat("/seq").inum)
        addrs = [ffs.block_map.get(inode, lbn) for lbn in range(6)]
        assert addrs == list(range(addrs[0], addrs[0] + 6))

    def test_file_inode_near_directory(self, ffs):
        ffs.mkdir("/d")
        ffs.create("/d/f").close()
        dir_cg = ffs.layout.cg_of_inum(ffs.stat("/d").inum)
        file_cg = ffs.layout.cg_of_inum(ffs.stat("/d/f").inum)
        assert dir_cg == file_cg

    def test_directories_spread(self, ffs):
        ffs.mkdir("/d1")
        ffs.mkdir("/d2")
        cg1 = ffs.layout.cg_of_inum(ffs.stat("/d1").inum)
        cg2 = ffs.layout.cg_of_inum(ffs.stat("/d2").inum)
        assert cg1 != cg2

    def test_atime_kept_in_inode(self, ffs):
        ffs.write_file("/f", b"x")
        ffs.clock.advance(5.0)
        ffs.read_file("/f")
        inode = ffs._get_inode(ffs.stat("/f").inum)
        assert inode.atime == pytest.approx(ffs.stat("/f").atime)
        assert inode.atime > 0


class TestDurability:
    def test_unmount_then_mount(self, ffs):
        ffs.mkdir("/d")
        ffs.write_file("/d/f", b"persist")
        ffs.unmount()
        again = FastFileSystem.mount(ffs.disk, ffs.cpu, small_ffs_config())
        assert again.read_file("/d/f") == b"persist"

    def test_mount_restores_bitmaps(self, ffs):
        ffs.write_file("/f", b"x" * 8192 * 3)
        ffs.unmount()
        again = FastFileSystem.mount(ffs.disk, ffs.cpu, small_ffs_config())
        free_before = again.allocator.free_blocks()
        again.write_file("/g", b"y" * 8192)
        assert again.allocator.free_blocks() == free_before - 1

    def test_free_space_accounting(self, ffs):
        ffs.create("/f").close()  # the root dir block is allocated here
        before = ffs.free_space_bytes()
        with ffs.open("/f") as handle:
            handle.write(b"z" * 8192 * 2)
        assert ffs.free_space_bytes() == before - 2 * ffs.block_size
        ffs.unlink("/f")
        assert ffs.free_space_bytes() == before

    def test_large_file_roundtrip_through_indirects(self, ffs):
        payload = bytes(range(256)) * 512  # 128 KB: needs the indirect
        ffs.write_file("/big", payload)
        ffs.sync()
        ffs.flush_caches()
        assert ffs.read_file("/big") == payload
