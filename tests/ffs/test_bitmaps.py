"""Unit tests for cylinder-group bitmaps."""

import pytest

from repro.errors import CorruptionError, InvalidArgumentError
from repro.ffs.bitmaps import Bitmap


class TestBasics:
    def test_starts_free(self):
        bitmap = Bitmap(100)
        assert bitmap.free_count == 100
        assert bitmap.used_count == 0
        assert not bitmap.is_set(0)

    def test_set_clear(self):
        bitmap = Bitmap(10)
        bitmap.set(3)
        assert bitmap.is_set(3)
        assert bitmap.free_count == 9
        bitmap.clear(3)
        assert not bitmap.is_set(3)
        assert bitmap.free_count == 10

    def test_double_set_raises(self):
        bitmap = Bitmap(10)
        bitmap.set(0)
        with pytest.raises(CorruptionError):
            bitmap.set(0)

    def test_double_clear_raises(self):
        bitmap = Bitmap(10)
        with pytest.raises(CorruptionError):
            bitmap.clear(0)

    def test_bounds(self):
        bitmap = Bitmap(8)
        with pytest.raises(InvalidArgumentError):
            bitmap.is_set(8)
        with pytest.raises(InvalidArgumentError):
            bitmap.set(-1)

    def test_zero_bits_rejected(self):
        with pytest.raises(InvalidArgumentError):
            Bitmap(0)


class TestAllocNear:
    def test_takes_hint_when_free(self):
        bitmap = Bitmap(32)
        assert bitmap.alloc_near(10) == 10

    def test_scans_forward(self):
        bitmap = Bitmap(32)
        bitmap.set(10)
        bitmap.set(11)
        assert bitmap.alloc_near(10) == 12

    def test_wraps_around(self):
        bitmap = Bitmap(4)
        bitmap.set(2)
        bitmap.set(3)
        assert bitmap.alloc_near(2) == 0

    def test_exhausted_returns_none(self):
        bitmap = Bitmap(2)
        bitmap.set(0)
        bitmap.set(1)
        assert bitmap.alloc_near(0) is None

    def test_sequential_allocation_pattern(self):
        # The FFS layout property: consecutive hints give consecutive
        # blocks.
        bitmap = Bitmap(64)
        prev = bitmap.alloc_near(0)
        for _ in range(10):
            nxt = bitmap.alloc_near(prev + 1)
            assert nxt == prev + 1
            prev = nxt

    def test_out_of_range_hint_clamped(self):
        bitmap = Bitmap(8)
        assert bitmap.alloc_near(100) == 7


class TestSerialization:
    def test_roundtrip(self):
        bitmap = Bitmap(19)
        for i in (0, 7, 8, 18):
            bitmap.set(i)
        other = Bitmap.from_bytes(bitmap.to_bytes(), 19)
        assert other == bitmap
        assert other.free_count == 15

    def test_padding_bits_masked(self):
        data = b"\xff\xff\xff"
        bitmap = Bitmap.from_bytes(data, 19)
        assert bitmap.used_count == 19

    def test_short_data_rejected(self):
        with pytest.raises(CorruptionError):
            Bitmap.from_bytes(b"\x00", 19)

    def test_iter_set(self):
        bitmap = Bitmap(16)
        bitmap.set(1)
        bitmap.set(9)
        assert list(bitmap.iter_set()) == [1, 9]

    def test_equality(self):
        a, b = Bitmap(8), Bitmap(8)
        assert a == b
        a.set(1)
        assert a != b
