"""Unit tests for cylinder-group allocation policy."""

import pytest

from repro.errors import NoInodesError, NoSpaceError
from repro.ffs.allocator import Allocator, CylinderGroup
from repro.ffs.config import FfsConfig, FfsLayout
from repro.units import MIB


@pytest.fixture
def setup():
    config = FfsConfig(cg_bytes=8 * MIB, inodes_per_cg=128)
    layout = FfsLayout.for_device(config, 64 * MIB)
    return config, layout, Allocator(config, layout)


class TestInodeAllocation:
    def test_inode_zero_reserved(self, setup):
        _config, _layout, alloc = setup
        assert alloc.inode_is_allocated(0)

    def test_directories_spread_across_groups(self, setup):
        config, _layout, alloc = setup
        first = alloc.alloc_inode(is_dir=True, parent_cg=0)
        second = alloc.alloc_inode(is_dir=True, parent_cg=0)
        # cg0 has one fewer free inode (reserved 0), so the first dir
        # goes elsewhere; the second spreads to yet another group.
        assert first // config.inodes_per_cg != second // config.inodes_per_cg

    def test_files_stay_in_parent_group(self, setup):
        config, _layout, alloc = setup
        parent_cg = 3
        inum = alloc.alloc_inode(is_dir=False, parent_cg=parent_cg)
        assert inum // config.inodes_per_cg == parent_cg

    def test_file_spills_when_group_full(self, setup):
        config, _layout, alloc = setup
        for _ in range(config.inodes_per_cg):
            if alloc.groups[2].inodes.free_count:
                alloc.groups[2].inodes.alloc_near(0)
        inum = alloc.alloc_inode(is_dir=False, parent_cg=2)
        assert inum // config.inodes_per_cg != 2

    def test_free_and_reuse(self, setup):
        _config, _layout, alloc = setup
        inum = alloc.alloc_inode(is_dir=False, parent_cg=0)
        alloc.free_inode(inum)
        assert not alloc.inode_is_allocated(inum)
        assert alloc.alloc_inode(is_dir=False, parent_cg=0) == inum

    def test_exhaustion_raises(self, setup):
        config, layout, alloc = setup
        total = layout.max_inodes - 1  # inode 0 reserved
        for _ in range(total):
            alloc.alloc_inode(is_dir=False, parent_cg=0)
        with pytest.raises(NoInodesError):
            alloc.alloc_inode(is_dir=False, parent_cg=0)

    def test_allocation_dirties_group(self, setup):
        _config, _layout, alloc = setup
        alloc.take_dirty_groups()
        alloc.alloc_inode(is_dir=False, parent_cg=1)
        assert alloc.take_dirty_groups() == [1]


class TestBlockAllocation:
    def test_sequential_after_hint(self, setup):
        _config, layout, alloc = setup
        first = alloc.alloc_data_block(0, None)
        second = alloc.alloc_data_block(0, first)
        assert second == first + 1

    def test_prefers_requested_group(self, setup):
        _config, layout, alloc = setup
        addr = alloc.alloc_data_block(2, None)
        assert layout.cg_of_block(addr) == 2

    def test_spills_to_next_group(self, setup):
        config, layout, alloc = setup
        group = alloc.groups[1]
        while group.blocks.free_count:
            group.blocks.alloc_near(0)
        addr = alloc.alloc_data_block(1, None)
        assert layout.cg_of_block(addr) != 1

    def test_free_block(self, setup):
        _config, _layout, alloc = setup
        addr = alloc.alloc_data_block(0, None)
        assert alloc.block_is_allocated(addr)
        alloc.free_data_block(addr)
        assert not alloc.block_is_allocated(addr)

    def test_exhaustion_raises(self, setup):
        _config, layout, alloc = setup
        for group in alloc.groups:
            while group.blocks.free_count:
                group.blocks.alloc_near(0)
        with pytest.raises(NoSpaceError):
            alloc.alloc_data_block(0, None)

    def test_maxbpg_changes_group(self, setup):
        config, _layout, alloc = setup
        assert alloc.preferred_cg_for(0, 0) == 0
        assert alloc.preferred_cg_for(0, config.maxbpg) == 1
        assert alloc.preferred_cg_for(0, 2 * config.maxbpg) == 2

    def test_free_counts(self, setup):
        _config, layout, alloc = setup
        blocks = alloc.free_blocks()
        alloc.alloc_data_block(0, None)
        assert alloc.free_blocks() == blocks - 1


class TestCgSerialization:
    def test_roundtrip(self, setup):
        config, _layout, alloc = setup
        group = alloc.groups[0]
        group.blocks.set(5)
        packed = group.pack()
        assert len(packed) == config.block_size
        parsed = CylinderGroup.unpack(config, packed)
        assert parsed.index == 0
        assert parsed.inodes == group.inodes
        assert parsed.blocks == group.blocks

    def test_corruption_detected(self, setup):
        config, _layout, alloc = setup
        packed = bytearray(alloc.groups[0].pack())
        packed[20] ^= 0xFF
        from repro.errors import CorruptionError

        with pytest.raises(CorruptionError):
            CylinderGroup.unpack(config, bytes(packed))
