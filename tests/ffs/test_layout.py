"""Unit tests for FFS cylinder-group address arithmetic."""

import pytest

from repro.errors import InvalidArgumentError
from repro.ffs.config import FfsConfig, FfsLayout
from repro.units import KIB, MIB


@pytest.fixture
def layout() -> FfsLayout:
    config = FfsConfig(cg_bytes=8 * MIB, inodes_per_cg=256)
    return FfsLayout.for_device(config, 64 * MIB)


class TestConfig:
    def test_paper_defaults(self):
        # §5: "An eight-kilobyte block size was used by SunOS".
        assert FfsConfig().block_size == 8 * KIB

    def test_derived_quantities(self):
        config = FfsConfig(cg_bytes=8 * MIB, inodes_per_cg=256)
        assert config.cg_blocks == 1024
        assert config.inodes_per_block == 8 * KIB // 160
        assert config.inode_table_blocks == -(-256 // config.inodes_per_block)
        assert (
            config.data_blocks_per_cg
            == config.cg_blocks - 1 - config.inode_table_blocks
        )

    def test_validation(self):
        with pytest.raises(InvalidArgumentError):
            FfsConfig(block_size=1000)
        with pytest.raises(InvalidArgumentError):
            FfsConfig(cg_bytes=8 * MIB + 1)
        with pytest.raises(InvalidArgumentError):
            FfsConfig(inodes_per_cg=4)
        with pytest.raises(InvalidArgumentError):
            FfsConfig(maxbpg=0)


class TestGroups:
    def test_group_count(self, layout):
        # 64 MB device: block 0 is the superblock, so 7 full 8 MB groups.
        assert layout.num_groups == 7
        assert layout.max_inodes == 7 * 256

    def test_group_bases_disjoint(self, layout):
        bases = [layout.cg_base(cg) for cg in range(layout.num_groups)]
        assert bases[0] == 1
        for a, b in zip(bases, bases[1:]):
            assert b - a == layout.config.cg_blocks

    def test_out_of_range_group(self, layout):
        with pytest.raises(InvalidArgumentError):
            layout.cg_base(7)


class TestInodeAddressing:
    def test_location_roundtrip(self, layout):
        for inum in (0, 1, 255, 256, 1000, layout.max_inodes - 1):
            addr, slot = layout.inode_location(inum)
            table_index = layout.inode_table_block_index(inum)
            assert layout.inode_table_block_addr(table_index) == addr
            assert inum in layout.inums_of_table_block(table_index)
            assert 0 <= slot < layout.config.inodes_per_block

    def test_locations_unique(self, layout):
        seen = set()
        for inum in range(layout.max_inodes):
            location = layout.inode_location(inum)
            assert location not in seen
            seen.add(location)

    def test_cg_of_inum(self, layout):
        assert layout.cg_of_inum(0) == 0
        assert layout.cg_of_inum(255) == 0
        assert layout.cg_of_inum(256) == 1
        with pytest.raises(InvalidArgumentError):
            layout.cg_of_inum(layout.max_inodes)

    def test_table_blocks_inside_group(self, layout):
        for inum in range(0, layout.max_inodes, 97):
            addr, _slot = layout.inode_location(inum)
            cg = layout.cg_of_inum(inum)
            assert layout.cg_base(cg) < addr < layout.data_start(cg)


class TestDataAddressing:
    def test_data_range(self, layout):
        for cg in range(layout.num_groups):
            start, end = layout.data_start(cg), layout.data_end(cg)
            assert end - start == layout.config.data_blocks_per_cg
            assert layout.is_data_block(start)
            assert layout.is_data_block(end - 1)
            assert not layout.is_data_block(layout.cg_header_addr(cg))

    def test_data_index_roundtrip(self, layout):
        addr = layout.data_start(3) + 17
        assert layout.data_index(addr) == (3, 17)

    def test_non_data_block_rejected(self, layout):
        with pytest.raises(InvalidArgumentError):
            layout.data_index(layout.cg_base(0))

    def test_cg_of_block(self, layout):
        assert layout.cg_of_block(1) == 0
        assert layout.cg_of_block(1 + 1024) == 1
        with pytest.raises(InvalidArgumentError):
            layout.cg_of_block(0)
