"""Unit tests for segment summary blocks (§4.3.1)."""

import pytest

from repro.common.inode import BlockKind
from repro.errors import CorruptionError
from repro.lfs.summary import SegmentSummary, SummaryEntry

BS = 4096


def sample_summary(nentries: int = 3) -> SegmentSummary:
    return SegmentSummary(
        seq=17,
        timestamp=42.5,
        next_segment_block=9000,
        entries=[
            SummaryEntry(
                kind=BlockKind.DATA, inum=10 + i, index=i, version=2
            )
            for i in range(nentries)
        ],
    )


class TestRoundtrip:
    def test_basic(self):
        summary = sample_summary()
        packed = summary.pack(BS)
        assert len(packed) == BS
        parsed = SegmentSummary.unpack(packed, BS)
        assert parsed == summary

    def test_inode_entry_with_inums(self):
        summary = SegmentSummary(
            seq=1,
            timestamp=0.0,
            entries=[
                SummaryEntry(
                    kind=BlockKind.INODE,
                    inum=5,
                    index=0,
                    inums=(5, 6, 7, 99),
                )
            ],
        )
        parsed = SegmentSummary.unpack(summary.pack(BS), BS)
        assert parsed.entries[0].inums == (5, 6, 7, 99)

    def test_empty_summary(self):
        summary = SegmentSummary(seq=1, timestamp=0.0, entries=[])
        parsed = SegmentSummary.unpack(summary.pack(BS), BS)
        assert parsed.nblocks == 0

    def test_all_kinds_roundtrip(self):
        entries = [
            SummaryEntry(kind=kind, inum=1, index=2, version=3)
            for kind in BlockKind
        ]
        summary = SegmentSummary(seq=9, timestamp=1.0, entries=entries)
        parsed = SegmentSummary.unpack(summary.pack(BS), BS)
        assert [e.kind for e in parsed.entries] == list(BlockKind)


class TestMultiBlockSummaries:
    def test_many_entries_span_blocks(self):
        summary = sample_summary(nentries=400)  # > one 4 KB block of entries
        nsummary = summary.summary_blocks(BS)
        assert nsummary == 2
        packed = summary.pack(BS)
        assert len(packed) == 2 * BS
        assert SegmentSummary.peek_summary_blocks(packed[:BS], BS) == 2
        parsed = SegmentSummary.unpack(packed, BS)
        assert parsed.nblocks == 400

    def test_unpack_insufficient_data_raises(self):
        packed = sample_summary(400).pack(BS)
        with pytest.raises(CorruptionError):
            SegmentSummary.unpack(packed[:BS], BS)

    def test_blocks_needed(self):
        assert SegmentSummary.blocks_needed(10, BS) == 1
        assert SegmentSummary.blocks_needed(BS, BS) == 2


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(CorruptionError):
            SegmentSummary.unpack(b"\x00" * BS, BS)

    def test_peek_bad_magic(self):
        with pytest.raises(CorruptionError):
            SegmentSummary.peek_summary_blocks(b"\xff" * BS, BS)

    def test_corrupted_body_fails_checksum(self):
        packed = bytearray(sample_summary().pack(BS))
        packed[60] ^= 0xFF  # flip a bit inside the entries
        with pytest.raises(CorruptionError):
            SegmentSummary.unpack(bytes(packed), BS)

    def test_entry_packed_size(self):
        plain = SummaryEntry(kind=BlockKind.DATA, inum=1, index=2)
        with_inums = SummaryEntry(
            kind=BlockKind.INODE, inum=1, index=0, inums=(1, 2, 3)
        )
        assert with_inums.packed_size() == plain.packed_size() + 12
