"""Cleaner behaviour under severe space pressure.

These scenarios historically deadlock log-structured systems: the
cleaner needs free segments to make free segments.  The implementation
defends with a sized reserve, the empty-victim fast path (reclaimed
*before* the flush), and an emergency mode that waives the utilization
threshold when the clean pool hits the reserve.
"""

import pytest

from repro.errors import NoSpaceError
from repro.lfs.filesystem import LogStructuredFS
from tests.conftest import small_lfs_config
from repro.units import KIB, MIB


class TestReserveSizing:
    def test_reserve_covers_dirty_threshold(self, disk, cpu):
        config = small_lfs_config(
            segment_size=256 * KIB, cache_bytes=4 * MIB
        )
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        # dirty threshold = 2 MB = 8 segments; +4 victims +2 slack.
        assert fs.segments.reserve_segments >= 14

    def test_reserve_capped_on_tiny_devices(self, clock, cpu):
        from repro.disk.geometry import wren_iv
        from repro.disk.sim_disk import SimDisk

        disk = SimDisk(wren_iv(16 * MIB), clock)
        config = small_lfs_config(
            segment_size=512 * KIB, cache_bytes=8 * MIB
        )
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        assert fs.segments.reserve_segments <= fs.layout.num_segments // 3


class TestEmergencyCleaning:
    def test_threshold_waived_when_pool_hits_reserve(self, disk, cpu):
        """White-box: every dirty segment sits above the cleanability
        threshold and the clean pool is at the reserve — the normal
        policy finds no victims, and the emergency mode must clean the
        over-threshold segments anyway."""
        config = small_lfs_config(
            segment_size=256 * KIB,
            cache_bytes=2 * MIB,
            max_live_fraction_to_clean=0.3,
        )
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        # Write real data so the "over-threshold" segments genuinely
        # hold live files, then fabricate the pressure: mark the rest
        # of the clean pool dirty at u = 0.6 (above the 0.3 threshold).
        for i in range(16):
            fs.write_file(f"/f{i}", bytes([i]) * 65536)
        fs.checkpoint()
        reserve = fs.segments.reserve_segments
        clean = fs.usage.clean_segments()
        for seg in clean[: len(clean) - (reserve + 2)]:
            fs.usage.force_state(
                seg, type(fs.usage.info(seg).state).DIRTY
            )
            fs.usage.note_write(
                seg, int(0.6 * config.segment_size), fs.clock.now()
            )
        assert fs.cleaner.select_victims(4) == []  # normal policy: stuck
        cleaned = fs.cleaner.clean(fs.layout.num_segments)
        assert fs.cleaner.stats.emergency_passes > 0
        assert cleaned > 0
        # The genuinely live data survived the emergency cleaning.
        for i in range(16):
            assert fs.read_file(f"/f{i}") == bytes([i]) * 65536

    def test_truly_full_disk_raises_cleanly(self, clock, cpu):
        from repro.disk.geometry import wren_iv
        from repro.disk.sim_disk import SimDisk

        disk = SimDisk(wren_iv(16 * MIB), clock)
        config = small_lfs_config(cache_bytes=1 * MIB)
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        with pytest.raises(NoSpaceError):
            for i in range(10000):
                fs.write_file(f"/fill{i}", b"F" * 32768)
        # The failure is clean: existing files still read back.
        survivors = [
            name for name in fs.listdir("/") if fs.stat(f"/{name}").size
        ]
        assert survivors
        assert fs.read_file(f"/{survivors[0]}")
