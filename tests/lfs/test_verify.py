"""Tests for the offline LFS verifier — and using it as a test oracle."""


from repro.lfs.filesystem import LogStructuredFS
from repro.lfs.verify import verify_lfs
from tests.conftest import small_lfs_config


def check(lfs) -> None:
    report = verify_lfs(lfs.disk.device)
    assert report.consistent, report.errors


class TestVerifierOnHealthyImages:
    def test_fresh_fs(self, lfs):
        lfs.unmount()
        report = verify_lfs(lfs.disk.device)
        assert report.consistent
        assert report.inodes_checked == 1  # just the root

    def test_populated_fs(self, lfs):
        lfs.mkdir("/d")
        for i in range(30):
            lfs.write_file(f"/d/f{i}", bytes([i]) * 3000)
        lfs.unmount()
        report = verify_lfs(lfs.disk.device)
        assert report.consistent, report.errors
        assert report.inodes_checked == 32
        assert report.directories_checked == 2
        assert report.live_bytes_found > 30 * 3000

    def test_after_churn_and_cleaning(self, lfs):
        for round_ in range(5):
            for i in range(120):
                lfs.write_file(
                    f"/c{round_}_{i}", bytes([(round_ * 40 + i) % 256]) * 4096
                )
            lfs.sync()
            for i in range(0, 120, 2):
                lfs.unlink(f"/c{round_}_{i}")
        lfs.clean_now(lfs.layout.num_segments)
        lfs.unmount()
        check(lfs)

    def test_after_crash_recovery(self, disk, cpu):
        fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
        fs.write_file("/a", b"a" * 5000)
        fs.checkpoint()
        fs.write_file("/b", b"b" * 5000)
        fs.sync()
        fs.crash()
        disk.revive()
        recovered = LogStructuredFS.mount(disk, cpu, small_lfs_config())
        recovered.unmount()
        check(recovered)

    def test_with_indirect_files(self, lfs):
        lfs.write_file("/big", b"B" * (20 * 4096))
        lfs.unmount()
        check(lfs)


class TestVerifierCatchesCorruption:
    def test_detects_clobbered_inode_block(self, lfs):
        lfs.write_file("/f", b"x" * 5000)
        inum = lfs.stat("/f").inum
        lfs.unmount()
        # Smash the inode's block on disk.
        imap_entry = lfs.imap.get(inum)
        spb = lfs.config.sectors_per_block
        lfs.disk.device.write(
            imap_entry.inode_addr * spb, b"\xde" * lfs.config.block_size
        )
        report = verify_lfs(lfs.disk.device)
        assert not report.consistent

    def test_detects_bad_nlink(self, lfs):
        lfs.mkdir("/d")
        lfs.unmount()
        # Rewrite the root inode with a wrong nlink directly on disk.
        from repro.common.inode import Inode, INODE_SIZE
        from repro.vfs.base import ROOT_INUM

        entry = lfs.imap.get(ROOT_INUM)
        spb = lfs.config.sectors_per_block
        raw = bytearray(
            lfs.disk.device.read(entry.inode_addr * spb, spb)
        )
        inode = Inode.unpack(
            raw[entry.slot * INODE_SIZE : (entry.slot + 1) * INODE_SIZE]
        )
        inode.nlink = 7
        raw[entry.slot * INODE_SIZE : (entry.slot + 1) * INODE_SIZE] = (
            inode.pack()
        )
        lfs.disk.device.write(entry.inode_addr * spb, bytes(raw))
        report = verify_lfs(lfs.disk.device)
        assert any("nlink" in error for error in report.errors)

    def test_blank_device_reports_error(self, disk):
        # verify_lfs never raises on a damaged image: a device with no
        # recognizable superblock comes back as a failed report.
        report = verify_lfs(disk.device)
        assert not report.consistent
        assert any("superblock" in error for error in report.errors)
