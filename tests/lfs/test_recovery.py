"""Crash-recovery tests: checkpoint mount and roll-forward (§4.4)."""



from repro.lfs.filesystem import LogStructuredFS
from tests.conftest import small_lfs_config


def remount(lfs, roll_forward=True):
    config = small_lfs_config(roll_forward=roll_forward)
    return LogStructuredFS.mount(lfs.disk, lfs.cpu, config)


def crash_and_revive(lfs):
    lfs.crash()
    lfs.disk.revive()


class TestCheckpointOnlyRecovery:
    def test_state_at_checkpoint_recovered(self, lfs):
        lfs.write_file("/kept", b"checkpointed")
        lfs.checkpoint()
        crash_and_revive(lfs)
        again = remount(lfs, roll_forward=False)
        assert again.read_file("/kept") == b"checkpointed"

    def test_writes_after_checkpoint_lost_without_roll_forward(self, lfs):
        lfs.checkpoint()
        lfs.write_file("/lost", b"too late")
        lfs.sync()
        crash_and_revive(lfs)
        again = remount(lfs, roll_forward=False)
        assert not again.exists("/lost")
        assert again.last_recovery.partials_applied == 0

    def test_unsynced_data_lost(self, lfs):
        # §4.4.1: "if the system crashes without writing the cache to
        # disk, any changes made ... since the last checkpoint will be
        # lost."
        lfs.checkpoint()
        lfs.write_file("/in-cache-only", b"x")
        crash_and_revive(lfs)
        again = remount(lfs)
        assert not again.exists("/in-cache-only")


class TestRollForward:
    def test_synced_writes_recovered(self, lfs):
        lfs.checkpoint()
        lfs.write_file("/after1", b"A" * 5000)
        lfs.write_file("/after2", b"B" * 100)
        lfs.sync()
        crash_and_revive(lfs)
        again = remount(lfs)
        assert again.read_file("/after1") == b"A" * 5000
        assert again.read_file("/after2") == b"B" * 100
        assert again.last_recovery.partials_applied >= 1

    def test_deletes_recovered(self, lfs):
        lfs.write_file("/doomed", b"bye")
        lfs.checkpoint()
        lfs.unlink("/doomed")
        lfs.sync()
        crash_and_revive(lfs)
        again = remount(lfs)
        assert not again.exists("/doomed")

    def test_overwrites_recovered(self, lfs):
        lfs.write_file("/f", b"old" * 1000)
        lfs.checkpoint()
        lfs.write_file("/f", b"new" * 1000)
        lfs.sync()
        crash_and_revive(lfs)
        again = remount(lfs)
        assert again.read_file("/f") == b"new" * 1000

    def test_multiple_flushes_recovered(self, lfs):
        lfs.checkpoint()
        for i in range(5):
            lfs.write_file(f"/gen{i}", bytes([i]) * 2000)
            lfs.sync()
        crash_and_revive(lfs)
        again = remount(lfs)
        for i in range(5):
            assert again.read_file(f"/gen{i}") == bytes([i]) * 2000

    def test_roll_forward_spans_segments(self, disk, cpu):
        # Small segments force the post-checkpoint log across several
        # segment boundaries (exercising the next-segment links).
        config = small_lfs_config(segment_size=64 * 1024)
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        fs.checkpoint()
        for i in range(40):
            fs.write_file(f"/s{i}", bytes([i]) * 8192)
            fs.sync()
        fs.crash()
        fs.disk.revive()
        again = LogStructuredFS.mount(fs.disk, fs.cpu, config)
        assert len(again.last_recovery.segments_visited) > 1
        for i in range(40):
            assert again.read_file(f"/s{i}") == bytes([i]) * 8192

    def test_recovery_is_idempotent(self, lfs):
        lfs.checkpoint()
        lfs.write_file("/x", b"x" * 3000)
        lfs.sync()
        crash_and_revive(lfs)
        once = remount(lfs)
        # Mount writes a post-recovery checkpoint; crash again
        # immediately and recover again.
        once.crash()
        once.disk.revive()
        twice = remount(once)
        assert twice.read_file("/x") == b"x" * 3000

    def test_in_flight_partial_segment_ignored(self, lfs):
        # A flush whose disk write never completed must be rolled back
        # by the device and invisible after recovery.
        lfs.write_file("/base", b"base")
        lfs.checkpoint()
        lfs.write_file("/tail", b"tail" * 500)
        lfs.flush_log()  # async write queued...
        lfs.crash()  # ...crash before it completes
        lfs.disk.revive()
        again = remount(lfs)
        assert again.read_file("/base") == b"base"
        assert not again.exists("/tail")

    def test_recovered_fs_fully_usable(self, lfs):
        lfs.checkpoint()
        lfs.mkdir("/d")
        lfs.write_file("/d/f", b"content")
        lfs.sync()
        crash_and_revive(lfs)
        again = remount(lfs)
        assert again.read_file("/d/f") == b"content"
        again.write_file("/d/new", b"more")
        again.unlink("/d/f")
        assert again.listdir("/d") == ["new"]
        again.unmount()
        final = remount(again)
        assert final.listdir("/d") == ["new"]

    def test_recovery_time_independent_of_fs_contents(self, lfs):
        # The §4.4 claim: recovery examines only the log tail.
        for i in range(300):
            lfs.write_file(f"/old{i}", b"o" * 4096)
        lfs.checkpoint()
        lfs.write_file("/small-tail", b"t")
        lfs.sync()
        crash_and_revive(lfs)
        start = lfs.clock.now()
        again = remount(lfs)
        elapsed = lfs.clock.now() - start
        assert again.last_recovery.recovery_seconds < 1.0
        assert elapsed < 5.0  # mount + recovery, all simulated seconds


class TestCrashDuringCheckpoint:
    def test_previous_checkpoint_survives(self, lfs):
        lfs.write_file("/a", b"a")
        lfs.checkpoint()
        lfs.write_file("/b", b"b")
        # Corrupt the *next* checkpoint region to simulate a torn
        # checkpoint write, then crash.
        region = lfs.checkpoints._next_region
        sector = lfs.checkpoints._region_sector(region)
        lfs.disk.write(sector, b"\xba\xad" * 1024, sync=True)
        crash_and_revive(lfs)
        again = remount(lfs)
        assert again.read_file("/a") == b"a"
