"""Behavioural tests for the segment cleaner (§4.3.2-§4.3.4)."""


from repro.lfs.cleaner import CleanerPolicy
from repro.lfs.filesystem import LogStructuredFS
from repro.lfs.segment_usage import SegmentState
from tests.conftest import small_lfs_config


def fill_and_fragment(lfs, rounds=3, files=150, size=4096, delete_every=2):
    """Create churn that leaves fragmented segments behind."""
    kept = []
    for round_ in range(rounds):
        names = []
        for i in range(files):
            name = f"/c{round_}_{i}"
            lfs.write_file(name, bytes([(round_ * 50 + i) % 256]) * size)
            names.append(name)
        lfs.sync()
        for index, name in enumerate(names):
            if index % delete_every == 0:
                lfs.unlink(name)
            else:
                kept.append(name)
    lfs.sync()
    return kept


class TestVictimSelection:
    def test_greedy_prefers_emptiest(self, lfs):
        fill_and_fragment(lfs)
        victims = lfs.cleaner.select_victims(3)
        utils = [lfs.usage.utilization(seg) for seg in victims]
        all_utils = sorted(
            lfs.usage.utilization(seg) for seg in lfs.usage.dirty_segments()
        )
        assert utils == all_utils[:3]

    def test_full_segments_never_selected(self, lfs):
        for i in range(400):
            lfs.write_file(f"/full{i}", b"f" * 4096)
        lfs.sync()
        for seg in lfs.cleaner.select_victims(100):
            assert (
                lfs.usage.utilization(seg)
                <= lfs.config.max_live_fraction_to_clean
            )

    def test_cost_benefit_prefers_old_when_equal(self, disk, cpu):
        config = small_lfs_config(cleaner_policy="cost-benefit")
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        fill_and_fragment(fs)
        assert fs.cleaner.policy is CleanerPolicy.COST_BENEFIT
        victims = fs.cleaner.select_victims(2)
        assert victims  # selection works under the alternate policy

    def test_random_policy_selects_candidates(self, disk, cpu):
        config = small_lfs_config(cleaner_policy="random")
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        fill_and_fragment(fs)
        victims = fs.cleaner.select_victims(4)
        dirty = set(fs.usage.dirty_segments())
        assert set(victims) <= dirty

    def test_no_candidates_on_clean_fs(self, lfs):
        assert lfs.cleaner.select_victims(4) == []


class TestCleaning:
    def test_cleaning_preserves_contents(self, lfs):
        kept = fill_and_fragment(lfs)
        cleaned = lfs.clean_now(lfs.layout.num_segments)
        assert cleaned > 0
        for name in kept:
            data = lfs.read_file(name)
            assert len(data) == 4096
            assert len(set(data)) == 1  # uniform payload survived

    def test_cleaning_increases_clean_count(self, lfs):
        fill_and_fragment(lfs)
        before = lfs.usage.clean_count()
        lfs.clean_now(lfs.layout.num_segments)
        assert lfs.usage.clean_count() > before

    def test_cleaned_segments_are_clean_and_empty(self, lfs):
        fill_and_fragment(lfs)
        dirty_before = set(lfs.usage.dirty_segments())
        lfs.clean_now(lfs.layout.num_segments)
        for seg in dirty_before:
            info = lfs.usage.info(seg)
            if info.state is SegmentState.CLEAN:
                assert info.live_bytes == 0

    def test_empty_segment_fast_path(self, lfs):
        # Delete everything: victims have zero live bytes and must be
        # reclaimed without reading them (§5.3).
        for i in range(300):
            lfs.write_file(f"/gone{i}", b"g" * 4096)
        lfs.sync()
        for i in range(300):
            lfs.unlink(f"/gone{i}")
        lfs.sync()
        bytes_read_before = lfs.cleaner.stats.bytes_read
        lfs.clean_now(lfs.layout.num_segments)
        assert lfs.cleaner.stats.empty_segments_skipped > 0
        # Only segments still holding live metadata (the directory's own
        # blocks) may be read; the all-dead file segments cost nothing.
        assert (
            lfs.cleaner.stats.bytes_read - bytes_read_before
            <= lfs.config.segment_size
        )

    def test_version_check_skips_deleted_files(self, lfs):
        # §4.3.3 step 1: summary-entry versions identify dead blocks
        # without consulting the inode.
        for i in range(200):
            lfs.write_file(f"/v{i}", b"v" * 4096)
        lfs.sync()
        for i in range(0, 200, 2):
            lfs.unlink(f"/v{i}")
        lfs.sync()
        lfs.clean_now(lfs.layout.num_segments)
        stats = lfs.cleaner.stats
        assert stats.dead_blocks_dropped > 0
        assert stats.live_blocks_copied > 0

    def test_cleaning_ends_with_checkpoint(self, lfs):
        fill_and_fragment(lfs)
        checkpoints_before = lfs.checkpoints.checkpoints_written
        if lfs.clean_now(lfs.layout.num_segments):
            assert lfs.checkpoints.checkpoints_written > checkpoints_before

    def test_cleaning_survives_remount(self, lfs):
        kept = fill_and_fragment(lfs)
        lfs.clean_now(lfs.layout.num_segments)
        lfs.unmount()
        again = LogStructuredFS.mount(lfs.disk, lfs.cpu, small_lfs_config())
        for name in kept:
            assert len(again.read_file(name)) == 4096

    def test_cleaning_relocates_dirty_cache_copies_once(self, lfs):
        # A file whose block is dirty in cache while its old on-disk copy
        # is being cleaned must not be duplicated or lost.
        lfs.write_file("/hot", b"1" * 4096)
        lfs.sync()
        with lfs.open("/hot") as handle:
            handle.pwrite(0, b"2" * 4096)  # dirty in cache
        lfs.clean_now(lfs.layout.num_segments)
        assert lfs.read_file("/hot") == b"2" * 4096

    def test_usage_accounting_stays_exact(self, lfs):
        fill_and_fragment(lfs, rounds=4)
        lfs.clean_now(lfs.layout.num_segments)
        assert lfs.usage.underflow_clamps == 0


class TestCleanerObservability:
    """The backpressure inputs: clean_reserve and per-policy victims."""

    def _telemetry_lfs(self):
        from repro import make_lfs
        from repro.obs import Telemetry

        telemetry = Telemetry()
        fs = make_lfs(total_bytes=24 * 1024 * 1024, telemetry=telemetry)
        return fs, telemetry

    def test_clean_reserve_counts_beyond_hard_reserve(self, lfs):
        expected = (
            lfs.usage.clean_count() - lfs.segments.reserve_segments
        )
        assert lfs.cleaner.clean_reserve() == expected

    def test_clean_reserve_drops_as_log_fills(self, lfs):
        before = lfs.cleaner.clean_reserve()
        for i in range(200):
            lfs.write_file(f"/r{i}", b"r" * 4096)
        lfs.sync()
        assert lfs.cleaner.clean_reserve() < before

    def test_clean_reserve_gauge_published(self):
        fs, telemetry = self._telemetry_lfs()
        reserve = fs.cleaner.clean_reserve()
        assert telemetry.registry.value("cleaner.clean_reserve") == reserve

    def test_victims_counter_labelled_by_policy(self):
        fs, telemetry = self._telemetry_lfs()
        fill_and_fragment(fs)
        cleaned = fs.clean_now(fs.layout.num_segments)
        assert cleaned > 0
        victims = telemetry.registry.value(
            "cleaner.victims", policy="greedy"
        )
        assert victims >= cleaned - fs.cleaner.stats.empty_segments_skipped
        # Unused policies exist as zero series, so `repro stats` always
        # shows the full breakdown.
        assert (
            telemetry.registry.value("cleaner.victims", policy="random")
            == 0
        )


class TestFsyncMany:
    def test_batched_fsync_flushes_once(self, lfs):
        handles = []
        for i in range(8):
            handle = lfs.create(f"/batch{i}")
            handle.write(b"b" * 4096)
            handles.append(handle)
        flushes_before = lfs.segments.log_bytes_written
        lfs.fsync_many(handles)
        assert lfs.cache.dirty_bytes == 0
        assert lfs.segments.log_bytes_written > flushes_before
        # One explicit SYNC trigger for the whole batch, not eight.
        from repro.cache.writeback import WritebackReason

        assert lfs.monitor.triggers[WritebackReason.SYNC] == 1
        for handle in handles:
            handle.close()

    def test_empty_batch_is_a_noop(self, lfs):
        written = lfs.segments.log_bytes_written
        lfs.fsync_many([])
        assert lfs.segments.log_bytes_written == written

    def test_single_fsync_delegates_to_batch_path(self, lfs):
        with lfs.create("/solo") as handle:
            handle.write(b"s" * 4096)
            handle.fsync()
        assert lfs.cache.dirty_bytes == 0


class TestWampReport:
    def test_amplification_exceeds_one_after_cleaning(self, lfs):
        fill_and_fragment(lfs)
        assert lfs.clean_now(lfs.layout.num_segments) > 0
        lfs.sync()
        wamp = lfs.wamp_report()
        assert wamp["user_bytes"] > 0
        assert wamp["cleaner_bytes"] > 0
        assert wamp["log_bytes"] >= wamp["cleaner_bytes"]
        assert wamp["write_amplification"] > 1.0
        assert wamp["cleaner_fraction"] == (
            wamp["cleaner_bytes"] / wamp["log_bytes"]
        )

    def test_fresh_fs_has_unit_ledger(self, lfs):
        wamp = lfs.wamp_report()
        assert wamp["user_bytes"] == 0
        assert wamp["cleaner_bytes"] == 0
        assert wamp["write_amplification"] == 0.0

    def test_wamp_counters_mirror_the_ledger(self, disk, cpu):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        lfs = LogStructuredFS.mkfs(
            disk, cpu, small_lfs_config(), telemetry=telemetry
        )
        fill_and_fragment(lfs)
        lfs.clean_now(lfs.layout.num_segments)
        lfs.sync()
        wamp = lfs.wamp_report()
        metrics = {
            record["name"]: record["value"]
            for record in telemetry.registry.to_dict()["metrics"]
            if record["name"].startswith("wamp.")
        }
        assert metrics["wamp.user_bytes"] == wamp["user_bytes"]
        assert metrics["wamp.log_bytes"] == wamp["log_bytes"]
        assert metrics["wamp.cleaner_bytes"] == wamp["cleaner_bytes"]
