"""Fuzz the segment-usage derived indexes (state sets, running live-byte
total, lazy clean-heap) against a brute-force scan of the entry array.

The queries the cleaner sits in a loop calling — ``clean_count``,
``dirty_segments``, ``min_clean``, ``total_live_bytes`` — are answered
from indexes maintained incrementally by every mutator.  These tests
drive random mutator sequences (including serialization round-trips,
which replace entry contents wholesale) and assert the indexes never
drift from the ground truth."""

import random

import pytest

from repro.errors import CorruptionError
from repro.lfs.segment_usage import SegmentState, SegmentUsage

SEGMENT_SIZE = 8192
BLOCK_SIZE = 4096


def make_usage(num_segments: int = 37) -> SegmentUsage:
    return SegmentUsage(num_segments, SEGMENT_SIZE, BLOCK_SIZE)


def scan_truth(usage: SegmentUsage):
    """Recompute every derived quantity from the raw entry array."""
    by_state = {state: [] for state in SegmentState}
    total_live = 0
    for seg in range(usage.num_segments):
        info = usage.info(seg)
        by_state[info.state].append(seg)
        total_live += info.live_bytes
    return by_state, total_live


def assert_indexes_match(usage: SegmentUsage) -> None:
    by_state, total_live = scan_truth(usage)
    assert usage.clean_segments() == by_state[SegmentState.CLEAN]
    assert usage.clean_count() == len(by_state[SegmentState.CLEAN])
    assert usage.dirty_segments() == by_state[SegmentState.DIRTY]
    assert usage.total_live_bytes() == total_live
    clean = by_state[SegmentState.CLEAN]
    assert usage.min_clean() == (clean[0] if clean else None)
    usage.verify_indexes()  # the library's own cross-check agrees


def random_mutation(usage: SegmentUsage, rng: random.Random) -> None:
    seg = rng.randrange(usage.num_segments)
    info = usage.info(seg)
    op = rng.randrange(7)
    if op == 0:
        if info.state is SegmentState.CLEAN:
            usage.mark_active(seg)
    elif op == 1:
        usage.mark_dirty(seg)
    elif op == 2:
        usage.mark_clean(seg, now=rng.random() * 100)
    elif op == 3:
        headroom = usage.segment_size - info.live_bytes
        if headroom:
            usage.note_write(seg, rng.randrange(1, headroom + 1), rng.random())
    elif op == 4:
        # Deliberately overshoots sometimes: the underflow clamp is part
        # of the accounting and must keep the running total consistent.
        usage.note_dead(seg, rng.randrange(1, usage.segment_size + 1))
    elif op == 5:
        usage.force_state(seg, rng.choice(list(SegmentState)))
    else:
        usage.note_write_hint(seg, rng.randrange(2 * usage.segment_size), rng.random())


@pytest.mark.parametrize("seed", range(8))
def test_indexes_agree_with_full_scan_under_fuzz(seed):
    rng = random.Random(seed)
    usage = make_usage()
    assert_indexes_match(usage)
    for step in range(400):
        random_mutation(usage, rng)
        if step % 7 == 0:
            assert_indexes_match(usage)
    assert_indexes_match(usage)


@pytest.mark.parametrize("seed", range(4))
def test_indexes_survive_block_roundtrip(seed):
    """pack_block/load_block replace entry contents wholesale; the
    derived indexes must track the loaded values, not the old ones."""
    rng = random.Random(1000 + seed)
    source = make_usage()
    target = make_usage()
    for _ in range(300):
        random_mutation(source, rng)
        random_mutation(target, rng)  # diverge target from source
    for index in range(source.num_blocks):
        target.load_block(index, source.pack_block(index))
    assert_indexes_match(target)
    for seg in range(source.num_segments):
        assert target.info(seg).state is source.info(seg).state
        assert target.info(seg).live_bytes == source.info(seg).live_bytes
    assert target.total_live_bytes() == source.total_live_bytes()


def test_load_all_resets_previous_state():
    rng = random.Random(7)
    usage = make_usage()
    for _ in range(200):
        random_mutation(usage, rng)
    blocks = {index: usage.pack_block(index) for index in range(usage.num_blocks)}
    fresh = make_usage()
    for _ in range(150):
        random_mutation(fresh, rng)
    fresh.load_all(list(usage.block_addrs), lambda addr: b"")  # addrs are NIL
    for index, data in blocks.items():
        fresh.load_block(index, data)
    assert_indexes_match(fresh)


def test_min_clean_heap_is_amortized_constant():
    """Every heap entry is pushed once per to-CLEAN transition and popped
    at most once ever, no matter how many times min_clean is called."""
    usage = make_usage(num_segments=64)
    rng = random.Random(42)
    transitions_to_clean = usage.num_segments  # the initial population
    for _ in range(2000):
        seg = rng.randrange(usage.num_segments)
        if usage.info(seg).state is SegmentState.CLEAN and rng.random() < 0.5:
            usage.mark_active(seg)
            usage.mark_dirty(seg)
        else:
            if usage.info(seg).state is not SegmentState.CLEAN:
                transitions_to_clean += 1
            usage.mark_clean(seg, 0.0)
        usage.min_clean()  # hammer the query
    assert usage.heap_pushes == transitions_to_clean
    assert usage.heap_pops <= usage.heap_pushes


def test_verify_indexes_detects_corruption():
    usage = make_usage()
    usage._state_sets[SegmentState.DIRTY].add(3)  # sabotage
    usage._state_sets[SegmentState.CLEAN].discard(3)
    with pytest.raises(CorruptionError):
        usage.verify_indexes()
