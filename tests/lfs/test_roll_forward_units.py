"""Focused tests for roll-forward navigation and guards (§4.4).

The recovery integration tests exercise whole crash scenarios; these
pin the specific guard behaviours of the log scanner: sequence-number
continuity, stale-summary rejection, the next-segment fallback, and
report bookkeeping.
"""


from repro.lfs.filesystem import LogStructuredFS
from tests.conftest import small_lfs_config


def checkpointed_fs(disk, cpu, **config_overrides):
    fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config(**config_overrides))
    fs.write_file("/base", b"base data")
    fs.checkpoint()
    return fs


class TestGuards:
    def test_stale_summary_from_previous_life_rejected(self, disk, cpu):
        """A clean segment may still hold a valid-looking summary from
        before it was cleaned; the sequence number must reject it."""
        fs = checkpointed_fs(disk, cpu)
        # Write beyond the checkpoint, then checkpoint again so the log
        # tail is empty but old summaries exist after the tail position.
        fs.write_file("/x", b"x" * 3000)
        fs.sync()
        fs.checkpoint()
        fs.crash()
        disk.revive()
        again = LogStructuredFS.mount(disk, cpu, small_lfs_config())
        # Nothing after the final checkpoint: the scan must stop at once
        # even though earlier summaries exist further along the log.
        assert again.last_recovery.partials_applied == 0
        assert again.read_file("/x") == b"x" * 3000

    def test_corrupt_tail_stops_scan_cleanly(self, disk, cpu):
        fs = checkpointed_fs(disk, cpu)
        fs.write_file("/good", b"g" * 2000)
        fs.sync()
        # Corrupt the log right after the synced partial: overwrite the
        # next blocks of the active segment with garbage.
        pos = fs.segments.position
        addr = (
            fs.layout.segment_first_block(pos.active_segment)
            + pos.active_offset
        )
        spb = fs.config.sectors_per_block
        fs.disk.write(addr * spb, b"\xab" * fs.config.block_size, sync=True)
        fs.crash()
        disk.revive()
        again = LogStructuredFS.mount(disk, cpu, small_lfs_config())
        assert again.read_file("/good") == b"g" * 2000

    def test_report_counts(self, disk, cpu):
        fs = checkpointed_fs(disk, cpu)
        for i in range(3):
            fs.write_file(f"/r{i}", bytes([i]) * 1500)
            fs.sync()
        fs.crash()
        disk.revive()
        again = LogStructuredFS.mount(disk, cpu, small_lfs_config())
        report = again.last_recovery
        assert report.partials_applied == 3
        assert report.blocks_recovered > 3
        assert report.imap_blocks_applied >= 3
        assert report.stop_reason == "log-end"
        assert report.recovery_seconds > 0

    def test_no_writes_after_checkpoint_reason(self, disk, cpu):
        fs = checkpointed_fs(disk, cpu)
        fs.crash()
        disk.revive()
        again = LogStructuredFS.mount(disk, cpu, small_lfs_config())
        assert (
            again.last_recovery.stop_reason == "no-writes-after-checkpoint"
        )

    def test_roll_forward_disabled_reports_empty(self, disk, cpu):
        fs = checkpointed_fs(disk, cpu)
        fs.write_file("/lost", b"l" * 1000)
        fs.sync()
        fs.crash()
        disk.revive()
        again = LogStructuredFS.mount(
            disk, cpu, small_lfs_config(roll_forward=False)
        )
        assert again.last_recovery.partials_applied == 0
        assert not again.exists("/lost")


class TestSegmentChainNavigation:
    def test_follows_next_segment_links(self, disk, cpu):
        # Tiny segments force the tail across many segment boundaries.
        fs = checkpointed_fs(disk, cpu, segment_size=64 * 1024)
        payload = b"chain" * 3000  # ~15 KB, several per segment
        for i in range(30):
            fs.write_file(f"/c{i}", payload)
            fs.sync()
        fs.crash()
        disk.revive()
        again = LogStructuredFS.mount(
            disk, cpu, small_lfs_config(segment_size=64 * 1024)
        )
        report = again.last_recovery
        assert len(report.segments_visited) >= 3
        for i in range(30):
            assert again.read_file(f"/c{i}") == payload

    def test_mid_flush_segment_skip_recovered(self, disk, cpu):
        """A flush that spills across segments mid-plan exercises the
        fallback navigation (next partial not adjacent to the last)."""
        fs = checkpointed_fs(disk, cpu, segment_size=64 * 1024)
        # One big multi-segment flush.
        fs.write_file("/big", b"B" * (200 * 1024))
        fs.sync()
        fs.crash()
        disk.revive()
        again = LogStructuredFS.mount(
            disk, cpu, small_lfs_config(segment_size=64 * 1024)
        )
        assert again.read_file("/big") == b"B" * (200 * 1024)
