"""Unit tests for the segment usage array (§4.3.4)."""

import pytest

from repro.common.inode import NIL
from repro.errors import CorruptionError
from repro.lfs.segment_usage import (
    SegmentInfo,
    SegmentState,
    SegmentUsage,
    USAGE_ENTRY_SIZE,
)

SEG = 256 * 1024
BS = 4096


@pytest.fixture
def usage() -> SegmentUsage:
    return SegmentUsage(num_segments=32, segment_size=SEG, block_size=BS)


class TestEntrySerialization:
    def test_roundtrip(self):
        info = SegmentInfo(
            live_bytes=12345, last_write=6.5, state=SegmentState.DIRTY
        )
        packed = info.pack()
        assert len(packed) == USAGE_ENTRY_SIZE
        assert SegmentInfo.unpack(packed) == info


class TestAccounting:
    def test_fresh_segments_clean_and_empty(self, usage):
        assert usage.clean_count() == 32
        assert usage.total_live_bytes() == 0

    def test_note_write(self, usage):
        usage.note_write(3, BS, now=1.0)
        info = usage.info(3)
        assert info.live_bytes == BS
        assert info.last_write == 1.0

    def test_note_write_overflow_raises(self, usage):
        with pytest.raises(CorruptionError):
            usage.note_write(0, SEG + 1, now=0.0)

    def test_note_dead(self, usage):
        usage.note_write(0, 2 * BS, now=0.0)
        usage.note_dead(0, BS)
        assert usage.info(0).live_bytes == BS
        assert usage.underflow_clamps == 0

    def test_note_dead_clamps_and_counts(self, usage):
        usage.note_dead(0, BS)
        assert usage.info(0).live_bytes == 0
        assert usage.underflow_clamps == 1

    def test_note_write_hint_clamps(self, usage):
        usage.note_write_hint(0, SEG + 999, now=0.0)
        assert usage.info(0).live_bytes == SEG

    def test_utilization(self, usage):
        usage.note_write(0, SEG // 2, now=0.0)
        assert usage.utilization(0) == pytest.approx(0.5)

    def test_out_of_range(self, usage):
        with pytest.raises(CorruptionError):
            usage.info(32)
        with pytest.raises(CorruptionError):
            usage.info(-1)


class TestStates:
    def test_lifecycle(self, usage):
        usage.mark_active(5)
        assert usage.info(5).state is SegmentState.ACTIVE
        usage.mark_dirty(5)
        assert 5 in usage.dirty_segments()
        usage.mark_clean(5, now=2.0)
        assert 5 in usage.clean_segments()
        assert usage.info(5).live_bytes == 0

    def test_mark_active_requires_clean(self, usage):
        usage.mark_dirty(1)
        with pytest.raises(CorruptionError):
            usage.mark_active(1)

    def test_force_state(self, usage):
        usage.mark_dirty(1)
        usage.force_state(1, SegmentState.ACTIVE)
        assert usage.info(1).state is SegmentState.ACTIVE

    def test_clean_count_tracks_transitions(self, usage):
        usage.mark_active(0)
        usage.mark_active(1)
        assert usage.clean_count() == 30
        usage.mark_dirty(0)
        usage.mark_clean(0, now=0.0)
        assert usage.clean_count() == 31


class TestBlocks:
    def test_dirty_block_tracking(self, usage):
        usage.note_write(0, BS, now=0.0)
        assert usage.dirty_block_indexes() == [0]
        usage.mark_block_clean(0)
        assert usage.dirty_block_indexes() == []

    def test_pack_load_roundtrip(self, usage):
        usage.note_write(1, 3 * BS, now=4.0)
        usage.mark_dirty(1)
        packed = usage.pack_block(0)
        assert len(packed) == BS

        other = SegmentUsage(num_segments=32, segment_size=SEG, block_size=BS)
        other.load_block(0, packed)
        assert other.info(1).live_bytes == 3 * BS
        assert other.info(1).state is SegmentState.DIRTY

    def test_load_all(self, usage):
        usage.note_write(2, BS, now=0.0)
        packed = usage.pack_block(0)
        other = SegmentUsage(num_segments=32, segment_size=SEG, block_size=BS)
        other.load_all([700], lambda addr: packed)
        assert other.info(2).live_bytes == BS
        assert other.block_addrs == [700]

    def test_load_all_wrong_count(self, usage):
        with pytest.raises(CorruptionError):
            usage.load_all([NIL, NIL], lambda addr: b"")

    def test_all_block_indexes(self, usage):
        assert usage.all_block_indexes() == list(range(usage.num_blocks))
