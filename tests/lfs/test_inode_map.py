"""Unit tests for the inode map (§4.2.1)."""

import pytest

from repro.common.inode import NIL
from repro.errors import CorruptionError, NoInodesError
from repro.lfs.inode_map import IMAP_ENTRY_SIZE, ImapEntry, InodeMap
from repro.vfs.base import ROOT_INUM

BS = 4096


@pytest.fixture
def imap() -> InodeMap:
    return InodeMap(max_inodes=1024, block_size=BS)


class TestEntrySerialization:
    def test_roundtrip(self):
        entry = ImapEntry(
            inode_addr=500, slot=7, version=3, atime=1.25, allocated=True
        )
        packed = entry.pack()
        assert len(packed) == IMAP_ENTRY_SIZE
        assert ImapEntry.unpack(packed) == entry

    def test_free_entry_roundtrip(self):
        entry = ImapEntry()
        assert ImapEntry.unpack(entry.pack()) == entry


class TestAllocation:
    def test_allocate_skips_inode_zero(self, imap):
        inum = imap.allocate(now=0.0)
        assert inum >= ROOT_INUM

    def test_allocate_marks_allocated(self, imap):
        inum = imap.allocate(now=2.0)
        entry = imap.get(inum)
        assert entry.allocated
        assert entry.inode_addr == NIL
        assert entry.atime == 2.0

    def test_allocate_distinct(self, imap):
        inums = {imap.allocate(0.0) for _ in range(50)}
        assert len(inums) == 50

    def test_exhaustion(self):
        imap = InodeMap(max_inodes=4, block_size=BS)
        for _ in range(3):  # inode 0 reserved
            imap.allocate(0.0)
        with pytest.raises(NoInodesError):
            imap.allocate(0.0)

    def test_free_allows_reuse(self, imap):
        inum = imap.allocate(0.0)
        imap.free(inum)
        assert imap.allocate(0.0) == inum

    def test_force_allocate(self, imap):
        imap.force_allocate(ROOT_INUM, now=0.0)
        assert imap.get(ROOT_INUM).allocated
        with pytest.raises(CorruptionError):
            imap.force_allocate(ROOT_INUM, now=0.0)

    def test_double_free_raises(self, imap):
        inum = imap.allocate(0.0)
        imap.free(inum)
        with pytest.raises(CorruptionError):
            imap.free(inum)

    def test_allocated_count(self, imap):
        assert imap.allocated_count() == 0
        a = imap.allocate(0.0)
        b = imap.allocate(0.0)
        imap.free(a)
        assert imap.allocated_count() == 1
        assert imap.allocated_inums() == [b]


class TestVersions:
    def test_free_bumps_version(self, imap):
        inum = imap.allocate(0.0)
        assert imap.get(inum).version == 0
        imap.free(inum)
        assert imap.get(inum).version == 1

    def test_truncate_bump(self, imap):
        inum = imap.allocate(0.0)
        imap.bump_version(inum)
        assert imap.get(inum).version == 1

    def test_version_survives_reallocation(self, imap):
        inum = imap.allocate(0.0)
        imap.free(inum)
        assert imap.allocate(0.0) == inum
        # Blocks logged under version 0 must look dead to the cleaner.
        assert imap.get(inum).version == 1


class TestLocations:
    def test_set_location_returns_previous(self, imap):
        inum = imap.allocate(0.0)
        assert imap.set_location(inum, 100, 3) == NIL
        assert imap.set_location(inum, 200, 4) == 100
        entry = imap.get(inum)
        assert entry.inode_addr == 200 and entry.slot == 4

    def test_set_location_unallocated_raises(self, imap):
        with pytest.raises(CorruptionError):
            imap.set_location(5, 100, 0)

    def test_atime(self, imap):
        inum = imap.allocate(0.0)
        imap.set_atime(inum, 9.0)
        assert imap.get(inum).atime == 9.0

    def test_out_of_range_inum(self, imap):
        with pytest.raises(CorruptionError):
            imap.get(0)
        with pytest.raises(CorruptionError):
            imap.get(1024)


class TestBlocks:
    def test_dirty_tracking(self, imap):
        assert not imap.has_dirty_blocks()
        inum = imap.allocate(0.0)
        assert imap.dirty_block_indexes() == [imap.block_of(inum)]
        imap.mark_block_clean(imap.block_of(inum))
        assert not imap.has_dirty_blocks()

    def test_block_roundtrip(self, imap):
        inum = imap.allocate(5.0)
        imap.set_location(inum, 77, 2)
        index = imap.block_of(inum)
        packed = imap.pack_block(index)
        assert len(packed) == BS

        other = InodeMap(max_inodes=1024, block_size=BS)
        other.load_block(index, packed)
        entry = other.get(inum)
        assert entry.allocated and entry.inode_addr == 77 and entry.slot == 2

    def test_load_all(self, imap):
        inum = imap.allocate(0.0)
        imap.set_location(inum, 42, 0)
        index = imap.block_of(inum)
        packed = {index: imap.pack_block(index)}
        addrs = [NIL] * imap.num_blocks
        addrs[index] = 1000

        other = InodeMap(max_inodes=1024, block_size=BS)
        other.load_all(addrs, lambda addr: packed[index])
        assert other.get(inum).inode_addr == 42
        assert other.block_addrs[index] == 1000

    def test_load_all_wrong_count(self, imap):
        other = InodeMap(max_inodes=1024, block_size=BS)
        with pytest.raises(CorruptionError):
            other.load_all([NIL], lambda addr: b"")

    def test_entries_per_block(self, imap):
        assert imap.entries_per_block == BS // IMAP_ENTRY_SIZE
        assert imap.num_blocks * imap.entries_per_block >= 1024
