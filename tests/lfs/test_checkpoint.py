"""Unit tests for checkpoint regions (§4.4.1)."""

import pytest

from repro.disk.geometry import wren_iv
from repro.disk.sim_disk import SimDisk
from repro.errors import CheckpointError, CorruptionError
from repro.lfs.checkpoint import CheckpointData, CheckpointManager
from repro.lfs.config import LfsConfig, LfsLayout
from repro.lfs.segments import LogPosition
from repro.sim.clock import SimClock
from repro.units import MIB


def make_data(timestamp: float = 1.0, seq: int = 5) -> CheckpointData:
    return CheckpointData(
        timestamp=timestamp,
        position=LogPosition(
            active_segment=2, active_offset=17, next_segment=3, sequence=seq
        ),
        imap_addrs=[0, 100, 200],
        usage_addrs=[300],
    )


@pytest.fixture
def manager():
    clock = SimClock()
    disk = SimDisk(wren_iv(64 * MIB), clock)
    config = LfsConfig()
    layout = LfsLayout.for_device(config, disk.device.total_bytes)
    return CheckpointManager(layout, disk, clock)


class TestSerialization:
    def test_roundtrip(self, manager):
        data = make_data()
        packed = data.pack(manager.region_bytes)
        assert len(packed) == manager.region_bytes
        parsed = CheckpointData.unpack(packed)
        assert parsed == data

    def test_corruption_detected(self, manager):
        packed = bytearray(make_data().pack(manager.region_bytes))
        packed[100] ^= 0x01
        with pytest.raises(CorruptionError):
            CheckpointData.unpack(bytes(packed))

    def test_bad_magic(self, manager):
        with pytest.raises(CorruptionError):
            CheckpointData.unpack(b"\x00" * manager.region_bytes)

    def test_oversized_rejected(self):
        data = CheckpointData(
            timestamp=0.0,
            position=LogPosition(0, 0, 1, 1),
            imap_addrs=list(range(10000)),
        )
        with pytest.raises(CorruptionError):
            data.pack(1024)


class TestAlternation:
    def test_write_load_roundtrip(self, manager):
        manager.write(make_data(timestamp=1.0))
        loaded, region = manager.load_latest()
        assert loaded.timestamp == 1.0
        assert region == 0

    def test_alternates_regions(self, manager):
        manager.write(make_data(timestamp=1.0))
        manager.write(make_data(timestamp=2.0, seq=6))
        loaded, region = manager.load_latest()
        assert loaded.timestamp == 2.0
        assert region == 1
        # Next write goes back to region 0.
        manager.write(make_data(timestamp=3.0, seq=7))
        loaded, region = manager.load_latest()
        assert loaded.timestamp == 3.0
        assert region == 0

    def test_newest_wins(self, manager):
        manager.write(make_data(timestamp=5.0))
        manager.write(make_data(timestamp=2.0))  # older content, region 1
        loaded, _region = manager.load_latest()
        assert loaded.timestamp == 5.0

    def test_torn_checkpoint_falls_back(self, manager):
        manager.write(make_data(timestamp=1.0))
        # A crash mid-write of region 1: garbage there.
        manager.disk.write(
            manager._region_sector(1), b"\xde\xad" * 2048, sync=True
        )
        loaded, region = manager.load_latest()
        assert loaded.timestamp == 1.0
        assert region == 0

    def test_no_checkpoint_raises(self, manager):
        with pytest.raises(CheckpointError):
            manager.load_latest()

    def test_write_is_synchronous(self, manager):
        before = manager.clock.now()
        manager.write(make_data())
        assert manager.clock.now() > before
        assert manager.disk.stats.sync_requests >= 1

    def test_counters(self, manager):
        manager.write(make_data(timestamp=4.0))
        assert manager.checkpoints_written == 1
        assert manager.last_checkpoint_time == 4.0
