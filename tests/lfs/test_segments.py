"""Unit tests for segment allocation and the segment writer."""

import pytest

from repro.common.inode import BlockKind
from repro.disk.geometry import wren_iv
from repro.disk.sim_disk import SimDisk
from repro.errors import CleanerError, NoSpaceError
from repro.lfs.config import LfsConfig, LfsLayout
from repro.lfs.segments import PlannedBlock, SegmentManager
from repro.lfs.segment_usage import SegmentState, SegmentUsage
from repro.lfs.summary import SegmentSummary, SummaryEntry
from repro.sim.clock import SimClock
from repro.units import KIB, MIB

BS = 4 * KIB
SEG = 64 * KIB  # 16 blocks per segment: small, to test splitting


@pytest.fixture
def rig():
    clock = SimClock()
    disk = SimDisk(wren_iv(16 * MIB), clock)
    config = LfsConfig(segment_size=SEG, max_inodes=512)
    layout = LfsLayout.for_device(config, disk.device.total_bytes)
    usage = SegmentUsage(layout.num_segments, SEG, BS)
    manager = SegmentManager(layout, usage, disk, clock, reserve_segments=2)
    manager.start_fresh()
    return manager, usage, layout, disk


def planned(n: int, sink: list) -> list:
    blocks = []
    for i in range(n):
        entry = SummaryEntry(kind=BlockKind.DATA, inum=1, index=i)

        def finalize(addr: int, i=i) -> None:
            sink.append((i, addr))

        blocks.append(
            PlannedBlock(
                entry=entry,
                payload=lambda i=i: bytes([i % 256]) * BS,
                finalize=finalize,
            )
        )
    return blocks


class TestLayout:
    def test_segment_alignment(self):
        config = LfsConfig(segment_size=SEG)
        layout = LfsLayout.for_device(config, 16 * MIB)
        assert layout.seg_start_block % config.blocks_per_segment == 0
        assert layout.segment_first_block(0) == layout.seg_start_block
        assert (
            layout.segment_first_block(1)
            == layout.seg_start_block + config.blocks_per_segment
        )

    def test_segment_of_block(self):
        config = LfsConfig(segment_size=SEG)
        layout = LfsLayout.for_device(config, 16 * MIB)
        addr = layout.segment_first_block(3) + 5
        assert layout.segment_of_block(addr) == 3

    def test_rejects_blocks_before_log(self):
        config = LfsConfig(segment_size=SEG)
        layout = LfsLayout.for_device(config, 16 * MIB)
        with pytest.raises(Exception):
            layout.segment_of_block(0)

    def test_too_small_device_rejected(self):
        config = LfsConfig(segment_size=1 * MIB)
        with pytest.raises(Exception):
            LfsLayout.for_device(config, 2 * MIB)


class TestWritePlan:
    def test_single_partial_segment(self, rig):
        manager, usage, layout, disk = rig
        sink = []
        nbytes = manager.write_plan(planned(4, sink))
        assert nbytes == 5 * BS  # summary + 4 content blocks
        # Addresses are consecutive after the summary.
        addrs = [addr for _i, addr in sink]
        assert addrs == list(range(addrs[0], addrs[0] + 4))

    def test_payload_written_to_disk(self, rig):
        manager, usage, layout, disk = rig
        sink = []
        manager.write_plan(planned(2, sink))
        disk.drain()
        _i, addr = sink[0]
        spb = layout.config.sectors_per_block
        assert disk.read(addr * spb, spb) == b"\x00" * BS

    def test_summary_readable_from_disk(self, rig):
        manager, usage, layout, disk = rig
        pos_before = manager.position.active_offset
        seq = manager.position.sequence
        manager.write_plan(planned(3, []))
        disk.drain()
        first = layout.segment_first_block(
            manager.position.active_segment
        ) + pos_before
        spb = layout.config.sectors_per_block
        raw = disk.read(first * spb, spb)
        summary = SegmentSummary.unpack(raw, BS)
        assert summary.seq == seq
        assert summary.nblocks == 3
        assert summary.next_segment_block == layout.segment_first_block(
            manager.position.next_segment
        )

    def test_sequence_increments_per_partial(self, rig):
        manager, usage, layout, disk = rig
        seq = manager.position.sequence
        manager.write_plan(planned(1, []))
        manager.write_plan(planned(1, []))
        assert manager.position.sequence == seq + 2

    def test_plan_spanning_segments(self, rig):
        manager, usage, layout, disk = rig
        # 16 blocks per segment; 40 content blocks must span 3+ segments.
        sink = []
        manager.write_plan(planned(40, sink))
        segments = {layout.segment_of_block(addr) for _i, addr in sink}
        assert len(segments) >= 3
        assert len(sink) == 40

    def test_filled_segments_marked_dirty(self, rig):
        manager, usage, layout, disk = rig
        start_seg = manager.position.active_segment
        manager.write_plan(planned(40, []))
        assert usage.info(start_seg).state is SegmentState.DIRTY

    def test_active_and_next_marked_active(self, rig):
        manager, usage, layout, disk = rig
        manager.write_plan(planned(40, []))
        pos = manager.position
        assert usage.info(pos.active_segment).state is SegmentState.ACTIVE
        assert usage.info(pos.next_segment).state is SegmentState.ACTIVE

    def test_empty_plan_writes_nothing(self, rig):
        manager, usage, layout, disk = rig
        assert manager.write_plan([]) == 0
        assert disk.stats.writes == 0

    def test_one_async_request_per_partial(self, rig):
        manager, usage, layout, disk = rig
        manager.write_plan(planned(4, []))
        assert disk.stats.writes == 1
        assert disk.stats.sync_requests == 0

    def test_bad_payload_size_rejected(self, rig):
        manager, usage, layout, disk = rig
        block = PlannedBlock(
            entry=SummaryEntry(kind=BlockKind.DATA, inum=1, index=0),
            payload=lambda: b"short",
            finalize=lambda addr: None,
        )
        with pytest.raises(CleanerError):
            manager.write_plan([block])


class TestSpaceManagement:
    def test_reserve_enforced(self, rig):
        manager, usage, layout, disk = rig
        with pytest.raises(NoSpaceError):
            # Way more blocks than the device can hold.
            manager.write_plan(planned(layout.num_segments * 16, []))

    def test_cleaner_mode_can_dip_into_reserve(self, rig):
        manager, usage, layout, disk = rig
        manager.cleaner_mode = True
        total = layout.num_segments
        # Consume down into the reserve; only "no clean segments at all"
        # stops the cleaner.
        with pytest.raises(NoSpaceError, match="no clean segments"):
            manager.write_plan(planned(total * 16, []))

    def test_restore_position(self, rig):
        manager, usage, layout, disk = rig
        manager.write_plan(planned(3, []))
        saved = manager.position
        other = SegmentManager(layout, usage, disk, SimClock(), 2)
        other.restore(saved)
        assert other.position == saved
        assert other.position is not saved  # defensive copy

    def test_position_requires_open_log(self, rig):
        _manager, usage, layout, disk = rig
        fresh = SegmentManager(layout, usage, disk, SimClock(), 2)
        with pytest.raises(CleanerError):
            fresh.position

    def test_stats_accumulate(self, rig):
        manager, usage, layout, disk = rig
        manager.write_plan(planned(4, []))
        assert manager.partial_segments_written == 1
        assert manager.log_bytes_written == 5 * BS
        manager.cleaner_mode = True
        manager.write_plan(planned(1, []))
        assert manager.cleaner_bytes_written == 2 * BS


class TestSegmentBufferPool:
    def test_first_acquire_allocates(self):
        from repro.lfs.segments import SegmentBufferPool

        pool = SegmentBufferPool(SEG)
        buf = pool.acquire()
        assert isinstance(buf, bytearray) and len(buf) == SEG
        assert pool.allocations == 1 and pool.reuses == 0

    def test_release_then_acquire_reuses_same_buffer(self):
        from repro.lfs.segments import SegmentBufferPool

        pool = SegmentBufferPool(SEG)
        buf = pool.acquire()
        pool.release(buf)
        again = pool.acquire()
        assert again is buf
        assert pool.allocations == 1 and pool.reuses == 1

    def test_wrong_size_and_excess_buffers_dropped(self):
        from repro.lfs.segments import SegmentBufferPool

        pool = SegmentBufferPool(SEG, max_buffers=1)
        pool.release(bytearray(SEG - 1))  # wrong size: never pooled
        assert pool.acquire() is not None and pool.reuses == 0
        a, b = bytearray(SEG), bytearray(SEG)
        pool.release(a)
        pool.release(b)  # over max_buffers: dropped
        assert pool.acquire() is a
        assert pool.allocations == 1 and pool.reuses == 1

    def test_telemetry_counts_reuse(self):
        from repro.obs import Telemetry
        from repro.lfs.segments import SegmentBufferPool

        telemetry = Telemetry()
        pool = SegmentBufferPool(SEG, telemetry=telemetry)
        pool.release(pool.acquire())
        pool.acquire()
        assert (
            telemetry.registry.value("alloc.segment_pool_reuse") == 1
        )

    def test_steady_state_stops_allocating(self, rig):
        manager, usage, layout, disk = rig
        for _ in range(6):
            manager.write_plan(planned(4, []))
        # Partial segments cycle through the pool: after the first
        # assembly the writer never allocates another staging buffer.
        assert manager.pool.allocations == 1
        assert manager.pool.reuses >= 5
