"""Tests for LFS configuration and layout arithmetic."""

import pytest

from repro.errors import InvalidArgumentError
from repro.lfs.config import (
    CHECKPOINT_REGION_BLOCKS,
    LfsConfig,
    LfsLayout,
)
from repro.units import KIB, MIB


class TestConfigDefaults:
    def test_paper_parameters(self):
        config = LfsConfig()
        # §5: "LFS used a four-kilobyte block size and a one-megabyte
        # segment size"; §4.4.1: 30-second checkpoint interval.
        assert config.block_size == 4 * KIB
        assert config.segment_size == 1 * MIB
        assert config.checkpoint_interval == 30.0

    def test_blocks_per_segment(self):
        assert LfsConfig().blocks_per_segment == 256

    def test_sectors_per_block(self):
        assert LfsConfig().sectors_per_block == 8


class TestConfigValidation:
    def test_unaligned_block_size(self):
        with pytest.raises(InvalidArgumentError):
            LfsConfig(block_size=1000)

    def test_segment_not_multiple_of_block(self):
        with pytest.raises(InvalidArgumentError):
            LfsConfig(segment_size=4 * KIB * 3 + 1)

    def test_tiny_segment_rejected(self):
        with pytest.raises(InvalidArgumentError):
            LfsConfig(block_size=4 * KIB, segment_size=8 * KIB)

    def test_bad_policy(self):
        with pytest.raises(InvalidArgumentError):
            LfsConfig(cleaner_policy="newest-first")

    def test_watermark_ordering(self):
        with pytest.raises(InvalidArgumentError):
            LfsConfig(clean_low_water=10, clean_high_water=5)

    def test_live_fraction_bounds(self):
        with pytest.raises(InvalidArgumentError):
            LfsConfig(max_live_fraction_to_clean=0.0)


class TestLayout:
    def test_segments_after_boot_blocks(self):
        layout = LfsLayout.for_device(LfsConfig(), 300 * MIB)
        assert layout.seg_start_block >= 1 + 2 * CHECKPOINT_REGION_BLOCKS
        assert layout.seg_start_block % LfsConfig().blocks_per_segment == 0

    def test_paper_scale_segment_count(self):
        layout = LfsLayout.for_device(LfsConfig(), 300 * MIB)
        assert layout.num_segments == 299  # one lost to boot blocks

    def test_checkpoint_regions_distinct(self):
        layout = LfsLayout.for_device(LfsConfig(), 300 * MIB)
        cr0, cr1 = layout.checkpoint_addrs
        assert cr1 - cr0 == CHECKPOINT_REGION_BLOCKS
        assert cr1 + CHECKPOINT_REGION_BLOCKS <= layout.seg_start_block

    def test_segment_block_mapping_roundtrip(self):
        layout = LfsLayout.for_device(LfsConfig(), 64 * MIB)
        for seg in (0, 1, layout.num_segments - 1):
            first = layout.segment_first_block(seg)
            assert layout.segment_of_block(first) == seg
            assert layout.segment_of_block(
                first + LfsConfig().blocks_per_segment - 1
            ) == seg

    def test_out_of_range_segment(self):
        layout = LfsLayout.for_device(LfsConfig(), 64 * MIB)
        with pytest.raises(InvalidArgumentError):
            layout.segment_first_block(layout.num_segments)

    def test_data_capacity(self):
        layout = LfsLayout.for_device(LfsConfig(), 64 * MIB)
        assert layout.data_capacity_bytes == layout.num_segments * MIB
