"""Behavioural tests for the LFS storage manager."""

import pytest

from repro.errors import NoSpaceError, StaleHandleError
from repro.lfs.filesystem import LogStructuredFS, SuperBlock
from tests.conftest import small_lfs_config


class TestSuperBlock:
    def test_roundtrip(self):
        superblock = SuperBlock(
            block_size=4096,
            segment_size=262144,
            max_inodes=4096,
            total_blocks=16384,
        )
        assert SuperBlock.unpack(superblock.pack()) == superblock

    def test_bad_magic(self):
        from repro.errors import CorruptionError

        with pytest.raises(CorruptionError):
            SuperBlock.unpack(b"\x00" * 4096)


class TestNoSynchronousWrites:
    def test_create_touches_no_disk(self, lfs):
        writes_before = lfs.disk.stats.writes
        lfs.create("/f").close()
        assert lfs.disk.stats.writes == writes_before

    def test_delete_touches_no_disk(self, lfs):
        lfs.create("/f").close()
        lfs.sync()
        writes_before = lfs.disk.stats.writes
        reads_before = lfs.disk.stats.reads
        lfs.unlink("/f")
        assert lfs.disk.stats.writes == writes_before
        assert lfs.disk.stats.reads == reads_before

    def test_only_checkpoints_are_synchronous(self, lfs):
        for i in range(100):
            lfs.write_file(f"/f{i}", b"x" * 3000)
        lfs.checkpoint()
        # All log writes are async; only checkpoint regions are sync.
        sync_events = lfs.disk.stats.sync_requests
        assert sync_events == lfs.checkpoints.checkpoints_written + 1
        # (+1: the superblock write at mkfs.)


class TestDataPath:
    def test_overwrite_marks_old_blocks_dead(self, lfs):
        lfs.write_file("/f", b"a" * 8192)
        lfs.sync()
        live_before = lfs.usage.total_live_bytes()
        lfs.write_file("/f", b"b" * 8192)  # truncate + rewrite
        lfs.sync()
        # Same amount of live data, old copies dead.
        assert lfs.read_file("/f") == b"b" * 8192
        assert lfs.usage.total_live_bytes() <= live_before + 3 * 4096

    def test_append_only_log_never_overwrites(self, lfs):
        lfs.write_file("/f", b"1" * 4096)
        lfs.sync()
        first_addr = lfs.block_map.get(lfs._get_inode(lfs.stat("/f").inum), 0)
        with lfs.open("/f") as handle:
            handle.pwrite(0, b"2" * 4096)
        lfs.sync()
        second_addr = lfs.block_map.get(lfs._get_inode(lfs.stat("/f").inum), 0)
        assert second_addr != first_addr

    def test_version_bumped_on_truncate_to_zero(self, lfs):
        lfs.write_file("/f", b"x" * 4096)
        inum = lfs.stat("/f").inum
        version = lfs.imap.get(inum).version
        with lfs.open("/f") as handle:
            handle.truncate(0)
        assert lfs.imap.get(inum).version == version + 1

    def test_atime_in_imap_not_inode(self, lfs):
        lfs.write_file("/f", b"x")
        inum = lfs.stat("/f").inum
        lfs.clock.advance(5.0)
        lfs.read_file("/f")
        assert lfs.imap.get(inum).atime == pytest.approx(
            lfs.stat("/f").atime
        )
        # Footnote 2: the inode itself does not track atime in LFS.
        assert lfs._get_inode(inum).atime == 0.0

    def test_read_does_not_dirty_inode(self, lfs):
        lfs.write_file("/f", b"x" * 100)
        lfs.sync()
        assert not lfs._dirty_inodes
        lfs.read_file("/f")
        # Reading dirties only the inode map (atime), never the inode.
        assert not lfs._dirty_inodes

    def test_sparse_file_reads_zeros(self, lfs):
        with lfs.create("/sparse") as handle:
            handle.pwrite(100 * 4096, b"end")
        data = lfs.read_file("/sparse")
        assert len(data) == 100 * 4096 + 3
        assert data[:4096] == b"\x00" * 4096
        assert data[-3:] == b"end"

    def test_large_file_through_indirects(self, lfs):
        # > 12 direct blocks to exercise the single indirect path.
        payload = bytes(range(256)) * 16 * 30  # 120 KB
        lfs.write_file("/big", payload)
        lfs.sync()
        lfs.flush_caches()
        assert lfs.read_file("/big") == payload


class TestDurability:
    def test_unmount_then_mount(self, lfs):
        lfs.mkdir("/d")
        lfs.write_file("/d/f", b"persist me")
        lfs.unmount()
        again = LogStructuredFS.mount(lfs.disk, lfs.cpu, small_lfs_config())
        assert again.read_file("/d/f") == b"persist me"
        assert again.listdir("/") == ["d"]

    def test_unmounted_fs_rejects_ops(self, lfs):
        lfs.unmount()
        with pytest.raises(StaleHandleError):
            lfs.create("/f")

    def test_mount_preserves_inode_numbers(self, lfs):
        lfs.write_file("/f", b"x")
        inum = lfs.stat("/f").inum
        lfs.unmount()
        again = LogStructuredFS.mount(lfs.disk, lfs.cpu, small_lfs_config())
        assert again.stat("/f").inum == inum

    def test_mount_preserves_versions(self, lfs):
        lfs.write_file("/f", b"x")
        inum = lfs.stat("/f").inum
        with lfs.open("/f") as handle:
            handle.truncate(0)
        version = lfs.imap.get(inum).version
        lfs.unmount()
        again = LogStructuredFS.mount(lfs.disk, lfs.cpu, small_lfs_config())
        assert again.imap.get(inum).version == version

    def test_flush_caches_forces_disk_reads(self, lfs):
        lfs.write_file("/f", b"y" * 4096)
        lfs.flush_caches()
        reads_before = lfs.disk.stats.reads
        assert lfs.read_file("/f") == b"y" * 4096
        assert lfs.disk.stats.reads > reads_before


class TestSpace:
    def test_disk_full_raises(self, disk, cpu):
        config = small_lfs_config(cache_bytes=1024 * 1024)
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        with pytest.raises(NoSpaceError):
            for i in range(100000):
                fs.write_file(f"/f{i}", b"z" * 8192)

    def test_deleting_frees_space(self, lfs):
        # Fill a good chunk, delete it all, then fill again: the cleaner
        # must recycle the dead segments.
        for round_ in range(4):
            for i in range(200):
                lfs.write_file(f"/r{round_}_{i}", b"q" * 8192)
            lfs.sync()
            for i in range(200):
                lfs.unlink(f"/r{round_}_{i}")
        assert lfs.usage.underflow_clamps == 0

    def test_write_cost_counts_metadata(self, lfs):
        lfs.write_file("/f", b"x" * 40960)
        lfs.sync()
        assert lfs.write_cost() > 1.0


class TestLfsSpecificApi:
    def test_checkpoint_resets_interval(self, lfs):
        before = lfs.checkpoints.checkpoints_written
        lfs.checkpoint()
        assert lfs.checkpoints.checkpoints_written == before + 1

    def test_clean_now_on_clean_fs(self, lfs):
        assert lfs.clean_now() == 0

    def test_utilization_histogram(self, lfs):
        for i in range(100):
            lfs.write_file(f"/f{i}", b"h" * 8192)
        lfs.sync()
        histogram = lfs.segment_utilization_histogram()
        assert len(histogram) == 10
        assert sum(histogram) == len(lfs.usage.dirty_segments())

    def test_live_data_bytes_grows(self, lfs):
        before = lfs.live_data_bytes()
        lfs.write_file("/f", b"x" * 40960)
        lfs.sync()
        assert lfs.live_data_bytes() > before
