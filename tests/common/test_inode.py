"""Unit tests for inodes and the block map."""

import pytest

from repro.common.inode import (
    BlockKey,
    BlockKind,
    BlockMap,
    FileType,
    Inode,
    INODE_SIZE,
    N_DIRECT,
    NIL,
    pointers_per_block,
)
from repro.errors import CorruptionError, InvalidArgumentError

BS = 4096
PPB = pointers_per_block(BS)


class TestInodeSerialization:
    def test_roundtrip(self):
        inode = Inode(
            inum=42,
            ftype=FileType.REGULAR,
            nlink=3,
            size=123456,
            mtime=1.5,
            ctime=2.5,
            atime=3.5,
            direct=[i * 7 for i in range(N_DIRECT)],
            indirect=99,
            dindirect=100,
        )
        packed = inode.pack()
        assert len(packed) == INODE_SIZE
        assert Inode.unpack(packed) == inode

    def test_free_inode_roundtrip(self):
        inode = Inode(inum=1)
        assert Inode.unpack(inode.pack()) == inode

    def test_bad_type_rejected(self):
        packed = bytearray(Inode(inum=1).pack())
        packed[4] = 99  # the ftype byte
        with pytest.raises(CorruptionError):
            Inode.unpack(bytes(packed))

    def test_wrong_direct_count_rejected(self):
        with pytest.raises(InvalidArgumentError):
            Inode(inum=1, direct=[0] * 3)

    def test_copy_is_deep_enough(self):
        inode = Inode(inum=5, ftype=FileType.REGULAR)
        clone = inode.copy()
        clone.direct[0] = 77
        assert inode.direct[0] == NIL

    def test_nblocks(self):
        inode = Inode(inum=1, size=BS * 2 + 1)
        assert inode.nblocks(BS) == 3
        assert Inode(inum=1, size=0).nblocks(BS) == 0

    def test_is_dir(self):
        assert Inode(inum=1, ftype=FileType.DIRECTORY).is_dir
        assert not Inode(inum=1, ftype=FileType.REGULAR).is_dir


class _MapHarness:
    """Minimal in-memory pointer-block store for BlockMap tests."""

    def __init__(self):
        self.blocks = {}
        self.dirtied = []
        self.map = BlockMap(BS, self.load, self.dirty)
        self.map.set_cache_probe(lambda key: key in self.blocks)

    def load(self, key, addr):
        if key not in self.blocks:
            self.blocks[key] = [NIL] * PPB
        return self.blocks[key]

    def dirty(self, key):
        self.dirtied.append(key)


class TestBlockMapDirect:
    def test_get_hole(self):
        h = _MapHarness()
        inode = Inode(inum=1, ftype=FileType.REGULAR)
        assert h.map.get(inode, 0) == NIL

    def test_set_get_direct(self):
        h = _MapHarness()
        inode = Inode(inum=1, ftype=FileType.REGULAR)
        old = h.map.set(inode, 3, 777)
        assert old == NIL
        assert inode.direct[3] == 777
        assert h.map.get(inode, 3) == 777

    def test_set_returns_previous(self):
        h = _MapHarness()
        inode = Inode(inum=1, ftype=FileType.REGULAR)
        h.map.set(inode, 0, 10)
        assert h.map.set(inode, 0, 20) == 10

    def test_negative_lbn_rejected(self):
        h = _MapHarness()
        inode = Inode(inum=1)
        with pytest.raises(InvalidArgumentError):
            h.map.get(inode, -1)

    def test_lbn_beyond_max_rejected(self):
        h = _MapHarness()
        inode = Inode(inum=1)
        with pytest.raises(InvalidArgumentError):
            h.map.get(inode, h.map.max_lbn + 1)


class TestBlockMapIndirect:
    def test_single_indirect(self):
        h = _MapHarness()
        inode = Inode(inum=1, ftype=FileType.REGULAR)
        lbn = N_DIRECT + 5
        h.map.set(inode, lbn, 123)
        assert h.map.get(inode, lbn) == 123
        key = BlockKey(1, BlockKind.INDIRECT, 0)
        assert h.blocks[key][5] == 123
        assert key in h.dirtied

    def test_hole_read_does_not_create_blocks(self):
        h = _MapHarness()
        inode = Inode(inum=1, ftype=FileType.REGULAR)
        assert h.map.get(inode, N_DIRECT + 5) == NIL
        assert h.blocks == {}

    def test_double_indirect(self):
        h = _MapHarness()
        inode = Inode(inum=1, ftype=FileType.REGULAR)
        lbn = N_DIRECT + PPB + PPB + 3  # second leaf under the root
        h.map.set(inode, lbn, 555)
        assert h.map.get(inode, lbn) == 555
        leaf = BlockKey(1, BlockKind.INDIRECT, 2)
        assert h.blocks[leaf][3] == 555
        root = BlockKey(1, BlockKind.DINDIRECT, 0)
        assert root in h.blocks

    def test_double_indirect_dirties_root(self):
        h = _MapHarness()
        inode = Inode(inum=1, ftype=FileType.REGULAR)
        h.map.set(inode, N_DIRECT + PPB, 1)
        assert BlockKey(1, BlockKind.DINDIRECT, 0) in h.dirtied

    def test_cached_nil_addressed_block_found(self):
        # An LFS-style pointer block: exists in cache, no disk address.
        h = _MapHarness()
        inode = Inode(inum=1, ftype=FileType.REGULAR)
        h.map.set(inode, N_DIRECT + 1, 42)
        assert inode.indirect == NIL  # address assigned only at flush
        assert h.map.get(inode, N_DIRECT + 1) == 42

    def test_single_indirect_ordinal(self):
        h = _MapHarness()
        assert h.map.single_indirect_ordinal(N_DIRECT) == 0
        assert h.map.single_indirect_ordinal(N_DIRECT + PPB - 1) == 0
        assert h.map.single_indirect_ordinal(N_DIRECT + PPB) == 1
        assert h.map.single_indirect_ordinal(N_DIRECT + 2 * PPB) == 2


class TestIterAndKeys:
    def test_iter_allocated(self):
        h = _MapHarness()
        inode = Inode(inum=1, ftype=FileType.REGULAR, size=5 * BS)
        h.map.set(inode, 0, 10)
        h.map.set(inode, 4, 14)
        assert list(h.map.iter_allocated(inode)) == [(0, 10), (4, 14)]

    def test_indirect_block_keys_small_file(self):
        h = _MapHarness()
        inode = Inode(inum=1, size=3 * BS)
        assert h.map.indirect_block_keys(inode) == []

    def test_indirect_block_keys_medium_file(self):
        h = _MapHarness()
        inode = Inode(inum=1, size=(N_DIRECT + 2) * BS)
        assert h.map.indirect_block_keys(inode) == [
            BlockKey(1, BlockKind.INDIRECT, 0)
        ]

    def test_indirect_block_keys_large_file(self):
        h = _MapHarness()
        inode = Inode(inum=1, size=(N_DIRECT + PPB + PPB + 1) * BS)
        keys = h.map.indirect_block_keys(inode)
        assert BlockKey(1, BlockKind.INDIRECT, 0) in keys
        assert BlockKey(1, BlockKind.DINDIRECT, 0) in keys
        assert BlockKey(1, BlockKind.INDIRECT, 1) in keys
        assert BlockKey(1, BlockKind.INDIRECT, 2) in keys

    def test_max_file_size(self):
        h = _MapHarness()
        expected = N_DIRECT + PPB + PPB * PPB - 1
        assert h.map.max_lbn == expected
