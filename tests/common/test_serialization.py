"""Unit tests for binary packing helpers."""

import pytest

from repro.common.serialization import (
    Packer,
    Unpacker,
    checksum,
    iter_u64,
    pack_u64_array,
    pad_block,
)
from repro.errors import CorruptionError


class TestPackerUnpacker:
    def test_roundtrip_all_field_types(self):
        data = (
            Packer()
            .u8(200)
            .u16(65000)
            .u32(4_000_000_000)
            .u64(2**63)
            .f64(3.14159)
            .string("héllo")
            .raw(b"tail")
            .bytes()
        )
        unpacker = Unpacker(data)
        assert unpacker.u8() == 200
        assert unpacker.u16() == 65000
        assert unpacker.u32() == 4_000_000_000
        assert unpacker.u64() == 2**63
        assert unpacker.f64() == pytest.approx(3.14159)
        assert unpacker.string() == "héllo"
        assert unpacker.raw(4) == b"tail"
        assert unpacker.remaining() == 0

    def test_truncated_read_raises(self):
        unpacker = Unpacker(b"\x01\x02")
        with pytest.raises(CorruptionError):
            unpacker.u32()

    def test_offset_tracking(self):
        unpacker = Unpacker(b"\x01\x02\x03\x04")
        unpacker.u16()
        assert unpacker.offset == 2
        assert unpacker.remaining() == 2

    def test_packer_len(self):
        packer = Packer().u32(1).u64(2)
        assert len(packer) == 12

    def test_string_too_long(self):
        with pytest.raises(ValueError):
            Packer().string("x" * 70000)

    def test_unpacker_with_offset(self):
        unpacker = Unpacker(b"\x00\x00\x07\x00\x00\x00", offset=2)
        assert unpacker.u32() == 7


class TestChecksum:
    def test_deterministic(self):
        assert checksum(b"abc") == checksum(b"abc")

    def test_differs_on_change(self):
        assert checksum(b"abc") != checksum(b"abd")

    def test_fits_u32(self):
        assert 0 <= checksum(b"anything at all") <= 0xFFFFFFFF


class TestPadBlock:
    def test_pads_to_size(self):
        assert pad_block(b"ab", 8) == b"ab\x00\x00\x00\x00\x00\x00"

    def test_exact_fit(self):
        assert pad_block(b"abcd", 4) == b"abcd"

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            pad_block(b"abcde", 4)


class TestU64Arrays:
    def test_roundtrip(self):
        values = [0, 1, 2**40, 2**64 - 1]
        assert list(iter_u64(pack_u64_array(values))) == values

    def test_empty(self):
        assert list(iter_u64(b"")) == []
        assert pack_u64_array([]) == b""

    def test_bad_length_raises(self):
        with pytest.raises(CorruptionError):
            list(iter_u64(b"\x00" * 7))
