"""Unit tests for the directory block format."""

import pytest

from repro.common.directory import (
    DirectoryBlock,
    MAX_NAME_LEN,
    entry_size,
    validate_name,
)
from repro.errors import CorruptionError, InvalidArgumentError

BS = 1024


class TestValidateName:
    def test_accepts_normal_names(self):
        validate_name("file.txt")
        validate_name("ünïcode")

    def test_rejects_empty(self):
        with pytest.raises(InvalidArgumentError):
            validate_name("")

    def test_rejects_slash(self):
        with pytest.raises(InvalidArgumentError):
            validate_name("a/b")

    def test_rejects_dot_names(self):
        with pytest.raises(InvalidArgumentError):
            validate_name(".")
        with pytest.raises(InvalidArgumentError):
            validate_name("..")

    def test_rejects_too_long(self):
        with pytest.raises(InvalidArgumentError):
            validate_name("x" * (MAX_NAME_LEN + 1))

    def test_accepts_max_length(self):
        validate_name("x" * MAX_NAME_LEN)


class TestEncodeDecode:
    def test_empty_block(self):
        block = DirectoryBlock(BS, [])
        assert block.encode() == b"\x00" * BS
        assert DirectoryBlock.decode(b"\x00" * BS, BS).entries == []

    def test_roundtrip(self):
        block = DirectoryBlock(BS, [])
        block.add("alpha", 10)
        block.add("βeta", 20)
        decoded = DirectoryBlock.decode(block.encode(), BS)
        assert decoded.entries == [("alpha", 10), ("βeta", 20)]

    def test_decode_rejects_oversized(self):
        with pytest.raises(CorruptionError):
            DirectoryBlock.decode(b"\x00" * (BS + 1), BS)

    def test_decode_rejects_garbage_header(self):
        data = b"\x05\x00\x00\x00\x00\x00" + b"\x00" * 100  # inum 5, len 0
        with pytest.raises(CorruptionError):
            DirectoryBlock.decode(data, BS)

    def test_decode_rejects_truncated_name(self):
        data = b"\x05\x00\x00\x00\xff\x00" + b"a" * 10
        with pytest.raises(CorruptionError):
            DirectoryBlock.decode(data, BS)


class TestMutation:
    def test_lookup(self):
        block = DirectoryBlock(BS, [("f", 3)])
        assert block.lookup("f") == 3
        assert block.lookup("g") is None

    def test_add_rejects_space_overflow(self):
        block = DirectoryBlock(60, [])  # room for 3 x 16-byte entries
        block.add("aaaaaaaaaa", 1)
        block.add("bbbbbbbbbb", 2)
        block.add("cccccccccc", 3)
        with pytest.raises(InvalidArgumentError):
            block.add("dddddddddd", 4)

    def test_add_rejects_bad_inum(self):
        block = DirectoryBlock(BS, [])
        with pytest.raises(InvalidArgumentError):
            block.add("ok", 0)

    def test_remove_returns_inum(self):
        block = DirectoryBlock(BS, [("a", 1), ("b", 2)])
        assert block.remove("a") == 1
        assert block.entries == [("b", 2)]

    def test_remove_missing_raises(self):
        block = DirectoryBlock(BS, [])
        with pytest.raises(InvalidArgumentError):
            block.remove("nope")

    def test_space_accounting(self):
        block = DirectoryBlock(BS, [])
        assert block.free_bytes() == BS
        block.add("abc", 1)
        assert block.used_bytes() == entry_size("abc")
        assert block.free_bytes() == BS - entry_size("abc")

    def test_has_room_for(self):
        block = DirectoryBlock(entry_size("abc"), [])
        assert block.has_room_for("abc")
        assert not block.has_room_for("abcd")

    def test_as_dict(self):
        block = DirectoryBlock(BS, [("x", 1), ("y", 2)])
        assert block.as_dict() == {"x": 1, "y": 2}

    def test_entry_size_utf8(self):
        assert entry_size("é") == 6 + 2  # header + two UTF-8 bytes
