"""Tests for the exception hierarchy contract.

Callers rely on catching :class:`ReproError` (or a mid-level family
like :class:`FileSystemError`) without accidentally swallowing
programming errors; these tests pin that structure.
"""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_disk_family(self):
        assert issubclass(errors.OutOfRangeError, errors.DiskError)
        assert issubclass(errors.DeviceCrashedError, errors.DiskError)
        assert not issubclass(errors.DiskError, errors.FileSystemError)

    def test_fs_family(self):
        for cls in (
            errors.NoSpaceError,
            errors.FileNotFoundError_,
            errors.FileExistsError_,
            errors.NotADirectoryError_,
            errors.IsADirectoryError_,
            errors.DirectoryNotEmptyError,
            errors.InvalidArgumentError,
            errors.StaleHandleError,
            errors.CorruptionError,
        ):
            assert issubclass(cls, errors.FileSystemError), cls

    def test_no_inodes_is_a_space_error(self):
        assert issubclass(errors.NoInodesError, errors.NoSpaceError)

    def test_checkpoint_error_is_corruption(self):
        assert issubclass(errors.CheckpointError, errors.CorruptionError)

    def test_not_builtin_exceptions(self):
        # Library errors must not be confusable with builtins.
        assert not issubclass(errors.FileNotFoundError_, FileNotFoundError)
        assert not issubclass(errors.FileExistsError_, FileExistsError)


class TestCatchability:
    def test_fs_operations_raise_catchable_family(self, anyfs):
        with pytest.raises(errors.ReproError):
            anyfs.open("/missing")
        with pytest.raises(errors.FileSystemError):
            anyfs.mkdir("/no/parent/here")

    def test_programming_errors_pass_through(self, anyfs):
        with pytest.raises((TypeError, AttributeError)):
            anyfs.pread("not a handle", None, None)
