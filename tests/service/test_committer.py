"""Unit tests for the group committer: N fsyncs, one flush."""

from __future__ import annotations

from collections import deque

import pytest

from repro.cache.writeback import WritebackReason
from repro.obs import Telemetry
from repro.service.committer import GroupCommitter
from repro.service.config import ServiceConfig
from repro.service.stats import ServiceStats


@pytest.fixture
def ready() -> deque:
    return deque()


def make_committer(lfs, ready, telemetry=None, **overrides):
    config = ServiceConfig(num_clients=2, **overrides)
    stats = ServiceStats()
    committer = GroupCommitter(
        lfs, config, stats, ready.append, telemetry=telemetry
    )
    return committer, stats


def drain(ready: deque) -> int:
    ran = 0
    while ready:
        ready.popleft()()
        ran += 1
    return ran


class TestWindowLifecycle:
    def test_first_fsync_opens_a_window(self, lfs, ready):
        committer, _stats = make_committer(lfs, ready)
        with lfs.create("/a") as handle:
            handle.write(b"x" * 4096)
        h = lfs.open("/a")
        committer.request_commit(h, lambda: None)
        assert committer.window_open
        assert committer.waiting == 1
        assert lfs.clock.pending_timers() >= 1

    def test_window_closes_after_commit_window_seconds(self, lfs, ready):
        committer, _stats = make_committer(lfs, ready, commit_window=0.05)
        with lfs.create("/a") as handle:
            handle.write(b"x" * 4096)
        h = lfs.open("/a")
        start = lfs.clock.now()
        committer.request_commit(h, lambda: None)
        lfs.clock.advance(0.05)
        assert drain(ready) >= 1  # the commit event, then the callback
        assert not committer.window_open
        assert committer.commits == 1
        assert lfs.clock.now() >= start + 0.05

    def test_batched_fsyncs_share_one_flush(self, lfs, ready):
        committer, stats = make_committer(lfs, ready)
        handles = []
        for i in range(6):
            with lfs.create(f"/f{i}") as handle:
                handle.write(bytes([i]) * 4096)
            handles.append(lfs.open(f"/f{i}"))
        lfs.flush_log()  # start from a clean slate of sync triggers
        sync_flushes_before = lfs.monitor.triggers.get(
            WritebackReason.SYNC, 0
        )
        done = []
        for i, handle in enumerate(handles):
            committer.request_commit(handle, lambda i=i: done.append(i))
        assert committer.waiting == 6
        lfs.clock.advance(1.0)
        drain(ready)
        sync_flushes = (
            lfs.monitor.triggers.get(WritebackReason.SYNC, 0)
            - sync_flushes_before
        )
        assert sync_flushes == 1  # one flush covered all six fsyncs
        assert done == [0, 1, 2, 3, 4, 5]  # FIFO completion order
        assert stats.commit_batches == [6]

    def test_empty_window_commit_is_a_noop(self, lfs, ready):
        committer, stats = make_committer(lfs, ready)
        committer.flush_now()
        assert committer.commits == 0
        assert stats.commit_batches == []

    def test_second_window_opens_after_first_closes(self, lfs, ready):
        committer, stats = make_committer(lfs, ready)
        for name in ("/a", "/b"):
            with lfs.create(name) as handle:
                handle.write(b"y" * 4096)
        h1 = lfs.open("/a")
        committer.request_commit(h1, lambda: None)
        lfs.clock.advance(1.0)
        drain(ready)
        h2 = lfs.open("/b")
        committer.request_commit(h2, lambda: None)
        assert committer.window_open
        lfs.clock.advance(1.0)
        drain(ready)
        assert stats.commit_batches == [1, 1]


class TestCommitterTelemetry:
    def test_batch_size_metrics(self, lfs, ready):
        telemetry = Telemetry()
        committer, _stats = make_committer(lfs, ready, telemetry=telemetry)
        for i in range(3):
            with lfs.create(f"/t{i}") as handle:
                handle.write(b"z" * 4096)
            committer.request_commit(lfs.open(f"/t{i}"), lambda: None)
        lfs.clock.advance(1.0)
        drain(ready)
        assert telemetry.registry.value("service.commits") == 1
        assert telemetry.registry.value("service.fsyncs_committed") == 3
