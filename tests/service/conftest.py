"""Service-test fixtures: telemetry-wired small file systems."""

from __future__ import annotations

import pytest

from repro.disk.geometry import wren_iv
from repro.disk.sim_disk import SimDisk
from repro.lfs.filesystem import LogStructuredFS
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel

from tests.conftest import SMALL_DEVICE, small_lfs_config


@pytest.fixture
def lfs_factory():
    """Build a fresh small LFS whose whole stack shares one telemetry."""

    def build(telemetry=None) -> LogStructuredFS:
        clock = SimClock()
        cpu = CpuModel(clock)
        disk = SimDisk(wren_iv(SMALL_DEVICE), clock, telemetry=telemetry)
        return LogStructuredFS.mkfs(
            disk, cpu, small_lfs_config(), telemetry=telemetry
        )

    return build
