"""Scheduler, prefill, and the issue's acceptance criteria."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.lfs.verify import verify_lfs
from repro.obs import Telemetry
from repro.service import (
    ServiceConfig,
    ServiceStats,
    percentile,
    prefill,
    run_service,
    serviceable_bytes,
    simulate_service,
)


class TestServiceConfig:
    def test_defaults_validate(self):
        ServiceConfig()

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(num_clients=0),
            dict(requests_per_client=0),
            dict(commit_window=-1.0),
            dict(think_mean=0.0),
            dict(fill_fraction=1.0),
            dict(mix={"write": 1.0, "scan": 2.0}),
            dict(mix={}),
            dict(write_min_bytes=0),
            dict(write_min_bytes=4096, write_max_bytes=1024),
            dict(max_files_per_client=1, min_files_per_client=2),
        ],
    )
    def test_bad_configs_rejected(self, overrides):
        with pytest.raises(InvalidArgumentError):
            ServiceConfig(**overrides)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        samples = [float(i) for i in range(100)]
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.99) == 99.0

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0


class TestStatsReport:
    def test_render_round_trips_counts(self):
        stats = ServiceStats()
        stats.note_submitted("write")
        stats.note_completed("write", 0.003)
        stats.note_batch(4)
        text = stats.render("t")
        assert "1 completed" in text
        assert "mean 4.00" in text

    def test_to_dict_is_json_stable(self):
        import json

        stats = ServiceStats()
        stats.started, stats.finished = 0.0, 2.0
        stats.note_submitted("fsync")
        stats.note_completed("fsync", 0.0101)
        assert json.loads(json.dumps(stats.to_dict())) == stats.to_dict()


class TestPrefill:
    def test_prefill_reaches_target(self, lfs):
        config = ServiceConfig(num_clients=1, fill_fraction=0.5)
        live = prefill(lfs, config)
        assert live >= 0.5 * serviceable_bytes(lfs)

    def test_prefill_disabled_writes_nothing(self, lfs):
        config = ServiceConfig(num_clients=1)
        assert prefill(lfs, config) == lfs.live_data_bytes()

    def test_serviceable_excludes_reserve_and_low_water(self, lfs):
        headroom = lfs.segments.reserve_segments + lfs.config.clean_low_water
        expected = (
            lfs.layout.num_segments - headroom
        ) * lfs.config.segment_size
        assert serviceable_bytes(lfs) == expected


class TestSchedulerRun:
    def test_every_request_completes(self, lfs):
        config = ServiceConfig(num_clients=3, seed=2, requests_per_client=20)
        stats, _scheduler = run_service(lfs, config)
        assert stats.completed == 60
        assert stats.dropped == 0
        assert sum(stats.submitted.values()) == 60

    def test_latencies_are_positive_and_counted(self, lfs):
        config = ServiceConfig(num_clients=2, seed=9, requests_per_client=15)
        stats, _scheduler = run_service(lfs, config)
        merged = stats.all_latencies()
        assert len(merged) == 30
        assert all(latency >= 0 for latency in merged)
        assert stats.p99() >= stats.p50() >= 0

    def test_telemetry_series_published(self, lfs_factory):
        telemetry = Telemetry()
        lfs = lfs_factory(telemetry=telemetry)
        config = ServiceConfig(num_clients=2, seed=1, requests_per_client=10)
        run_service(lfs, config, telemetry=telemetry)
        registry = telemetry.registry
        assert registry.value("service.completed") == 20
        assert registry.value("service.requests", kind="write") > 0
        assert registry.value("service.commits") >= 1

    def test_background_flusher_services_the_age_trigger(self, lfs):
        # Writes small enough that the threshold trigger never fires,
        # spaced far enough apart that dirty data crosses the 30 s age
        # threshold mid-run: only the flusher can write it back.
        config = ServiceConfig(
            num_clients=1,
            seed=4,
            requests_per_client=40,
            mix={"write": 1.0},
            think_mean=2.0,
            write_min_bytes=1024,
            write_max_bytes=1024,
            flusher_period=1.0,
        )
        stats, _scheduler = run_service(lfs, config)
        assert stats.background_flushes >= 1


class TestAcceptanceSixteenClients:
    def test_zero_dropped_and_batching_wins(self, lfs):
        config = ServiceConfig(num_clients=16, seed=0, requests_per_client=25)
        stats, scheduler = run_service(lfs, config)
        assert stats.completed == 16 * 25
        assert stats.dropped == 0
        assert stats.batch_mean > 1.5  # group commit actually groups
        assert scheduler.committer.commits == len(stats.commit_batches)


class TestBackpressureUnderPressure:
    def test_high_fill_engages_throttle_and_image_verifies(self, lfs):
        config = ServiceConfig(
            num_clients=8,
            seed=3,
            requests_per_client=40,
            fill_fraction=0.85,
        )
        stats, _scheduler = run_service(lfs, config)
        assert stats.dropped == 0
        assert stats.throttle_events > 0
        assert stats.throttle_seconds > 0.0
        lfs.checkpoint()
        lfs.unmount()
        report = verify_lfs(lfs.disk.device)
        assert report.consistent, report.errors


class TestSeededDeterminism:
    def _run(self, seed: int):
        config = ServiceConfig(
            num_clients=4, seed=seed, requests_per_client=25
        )
        stats, fs = simulate_service(config)
        fs.unmount()
        return stats, fs.disk.device.snapshot()

    def test_same_seed_identical_reports_and_images(self):
        stats1, image1 = self._run(seed=42)
        stats2, image2 = self._run(seed=42)
        assert stats1.render() == stats2.render()
        assert stats1.to_dict() == stats2.to_dict()
        assert image1 == image2

    def test_different_seed_diverges(self):
        stats1, image1 = self._run(seed=42)
        stats2, image2 = self._run(seed=43)
        assert image1 != image2 or stats1.render() != stats2.render()
