"""Cross-config rig validation (`validate_rig`)."""

import pytest

from repro.errors import ConfigError
from repro.lfs.config import LfsConfig
from repro.service.config import ServiceConfig, validate_rig
from repro.units import KIB, MIB


def _lfs(**kwargs):
    defaults = dict(segment_size=256 * KIB, cache_bytes=2 * MIB)
    defaults.update(kwargs)
    return LfsConfig(**defaults)


class TestValidateRig:
    def test_good_rig_passes(self):
        validate_rig(ServiceConfig(), _lfs(), device_bytes=32 * MIB)

    def test_bare_fs_rig_passes_without_service(self):
        validate_rig(None, _lfs(), device_bytes=24 * MIB)

    def test_cache_below_two_segments(self):
        with pytest.raises(ConfigError) as excinfo:
            validate_rig(
                ServiceConfig(), _lfs(cache_bytes=256 * KIB)
            )
        assert "cache_bytes" in str(excinfo.value)

    def test_payload_exceeding_segment(self):
        config = ServiceConfig(
            write_min_bytes=KIB, write_max_bytes=512 * KIB
        )
        with pytest.raises(ConfigError) as excinfo:
            validate_rig(config, _lfs())
        assert "write_max_bytes" in str(excinfo.value)

    def test_readahead_window_eating_the_cache(self):
        with pytest.raises(ConfigError) as excinfo:
            validate_rig(
                ServiceConfig(), _lfs(readahead_blocks=256)
            )
        assert "readahead" in str(excinfo.value)

    def test_unreachable_clean_high_water(self):
        with pytest.raises(ConfigError) as excinfo:
            validate_rig(
                ServiceConfig(),
                _lfs(clean_high_water=4096),
                device_bytes=8 * MIB,
            )
        assert "clean_high_water" in str(excinfo.value)

    def test_watermarks_leaving_no_serviceable_segments(self):
        config = ServiceConfig(reserve_watermark=1000)
        with pytest.raises(ConfigError) as excinfo:
            validate_rig(config, _lfs(), device_bytes=8 * MIB)
        assert "serviceable" in str(excinfo.value)

    def test_every_violation_reported_in_one_error(self):
        config = ServiceConfig(
            write_min_bytes=KIB,
            write_max_bytes=512 * KIB,
            reserve_watermark=1000,
        )
        with pytest.raises(ConfigError) as excinfo:
            validate_rig(
                config,
                _lfs(cache_bytes=256 * KIB, readahead_blocks=256),
                device_bytes=8 * MIB,
            )
        message = str(excinfo.value)
        # One round trip fixes the whole rig: all four named at once.
        for marker in (
            "cache_bytes",
            "write_max_bytes",
            "readahead",
            "serviceable",
        ):
            assert marker in message

    def test_capacity_checks_skipped_without_device_size(self):
        # Same watermark config is only checkable once the device size
        # is known; without it, field-level validity is all we claim.
        validate_rig(ServiceConfig(reserve_watermark=1000), _lfs())

    def test_simulate_service_validates_before_booting(self):
        from repro.service.scheduler import simulate_service

        with pytest.raises(ConfigError):
            simulate_service(
                ServiceConfig(num_clients=1, requests_per_client=1),
                total_bytes=32 * MIB,
                lfs_config=_lfs(cache_bytes=256 * KIB),
            )
