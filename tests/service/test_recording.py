"""Request-stream recording (``serve-sim --record``)."""

import json

from repro.service import ServiceConfig, simulate_service
from repro.service.recording import RequestRecorder
from repro.units import MIB


def _run(recorder, seed=0):
    config = ServiceConfig(
        num_clients=3, seed=seed, requests_per_client=10
    )
    stats, fs = simulate_service(
        config, total_bytes=32 * MIB, recorder=recorder
    )
    fs.unmount()
    return stats


def test_recorder_captures_every_request(tmp_path):
    recorder = RequestRecorder()
    stats = _run(recorder)
    assert len(recorder.records) == stats.completed + stats.dropped
    out = tmp_path / "requests.jsonl"
    count = recorder.write(str(out))
    assert count == len(recorder.records)
    lines = out.read_text().splitlines()
    assert len(lines) == count
    rids = []
    for line in lines:
        record = json.loads(line)
        assert set(record) == {
            "rid", "client", "op", "path", "bytes", "t_issue"
        }
        assert record["op"] in ("write", "read", "open", "delete", "fsync")
        assert record["t_issue"] >= 0
        if record["op"] == "write":
            assert record["path"].startswith("/c")
            assert record["bytes"] > 0
        rids.append(record["rid"])
    assert len(set(rids)) == len(rids)  # rids are unique


def test_recorded_stream_is_deterministic():
    first, second = RequestRecorder(), RequestRecorder()
    _run(first, seed=5)
    _run(second, seed=5)
    assert first.records == second.records
