"""Graceful read-only degradation of the service rig."""

import pytest

from repro.errors import ReadOnlyFSError
from repro.lfs.config import LfsConfig
from repro.lfs.filesystem import make_lfs
from repro.obs import Telemetry
from repro.service.admission import Decision
from repro.service.config import ServiceConfig
from repro.service.scheduler import RequestScheduler
from repro.units import KIB, MIB


def _small_fs(telemetry=None, budget=4):
    return make_lfs(
        total_bytes=8 * MIB,
        config=LfsConfig(
            segment_size=256 * KIB,
            cache_bytes=2 * MIB,
            quarantine_budget=budget,
        ),
        telemetry=telemetry,
    )


class TestDegradedTransition:
    def test_strikes_within_budget_stay_writable(self):
        fs = _small_fs(budget=4)
        fs.note_media_damage(4, reason="test")
        assert not fs.degraded
        with fs.create("/ok") as handle:
            handle.write(b"still writable")
        fs.unmount()

    def test_exceeding_the_budget_degrades_exactly_once(self):
        telemetry = Telemetry()
        fs = _small_fs(telemetry=telemetry, budget=2)
        fs.note_media_damage(3, reason="test")
        assert fs.degraded
        assert telemetry.gauge("fs.degraded").value == 1
        spans = [s for s in telemetry.tracer.spans if s.kind == "fs.degrade"]
        assert len(spans) == 1
        fs.note_media_damage(1, reason="again")
        spans = [s for s in telemetry.tracer.spans if s.kind == "fs.degrade"]
        assert len(spans) == 1  # transition fires once

    def test_degraded_writes_raise_typed_error_reads_survive(self):
        fs = _small_fs()
        with fs.create("/keep") as handle:
            handle.write(b"payload")
        fs.flush_log(checkpoint=True)
        fs.note_media_damage(99, reason="test")
        with pytest.raises(ReadOnlyFSError):
            fs.create("/new")
        with pytest.raises(ReadOnlyFSError):
            fs.unlink("/keep")
        assert fs.read_file("/keep") == b"payload"

    def test_degraded_fsync_refuses_rather_than_lies(self):
        fs = _small_fs()
        handle = fs.create("/f")
        handle.write(b"data")
        fs.note_media_damage(99, reason="test")
        # Acking an fsync would promise durability the volume cannot
        # give: the refusal must be the typed error, not a silent ack.
        with pytest.raises(ReadOnlyFSError):
            fs.fsync_many([handle])
        handle.close()


class TestDegradedService:
    def _run_degraded_rig(self):
        telemetry = Telemetry()
        fs = _small_fs(telemetry=telemetry)
        config = ServiceConfig(
            num_clients=4, seed=3, requests_per_client=30
        )
        scheduler = RequestScheduler(fs, config, telemetry=telemetry)
        # Give every stream a pre-degradation working set, as after a
        # remount: reads/opens then have surviving data to hit (a client
        # with no files degrades every request to a shed create).
        for client in scheduler.clients:
            path = f"{client.directory}/pre"
            with fs.create(path) as handle:
                handle.write(b"survives the degradation")
            client.files.append(path)
        fs.flush_log(checkpoint=True)
        fs.note_media_damage(99, reason="test")
        scheduler.run()  # must terminate without raising
        return fs, scheduler, telemetry

    def test_admission_sheds_write_class_with_reject_degraded(self):
        fs, scheduler, telemetry = self._run_degraded_rig()
        assert scheduler.stats.rejected_degraded > 0
        assert (
            telemetry.counter("service.rejected_degraded").value
            == scheduler.stats.rejected_degraded
        )

    def test_reads_still_complete_on_a_degraded_rig(self):
        fs, scheduler, _telemetry = self._run_degraded_rig()
        # The client directories predate the degradation (created at
        # scheduler construction), so opens/reads can still succeed.
        assert scheduler.stats.completed > 0

    def test_try_admit_decision_is_reject_degraded(self):
        fs = _small_fs()
        config = ServiceConfig(num_clients=1, requests_per_client=1)
        scheduler = RequestScheduler(fs, config)
        fs.note_media_damage(99, reason="test")
        assert (
            scheduler.admission.try_admit("write")
            is Decision.REJECT_DEGRADED
        )
        assert scheduler.admission.try_admit("read") is Decision.ADMIT

    def test_mid_run_degradation_fails_in_flight_writes_politely(self):
        # Degrade from *inside* the run (a timer flips the budget while
        # requests are in flight): nothing may escape scheduler.run().
        telemetry = Telemetry()
        fs = _small_fs(telemetry=telemetry)
        config = ServiceConfig(
            num_clients=4, seed=5, requests_per_client=40
        )
        scheduler = RequestScheduler(fs, config, telemetry=telemetry)
        fs.clock.call_at(
            fs.clock.now() + 0.05,
            lambda: fs.note_media_damage(99, reason="mid-run"),
        )
        scheduler.run()
        assert fs.degraded
        assert scheduler.stats.rejected_degraded > 0
