"""Unit tests for the admission controller's two gates."""

from __future__ import annotations

import pytest

from repro.obs import Telemetry
from repro.service.admission import AdmissionController, Decision, WRITE_CLASS
from repro.service.config import ServiceConfig
from repro.service.stats import ServiceStats


@pytest.fixture
def config() -> ServiceConfig:
    return ServiceConfig(num_clients=2, admission_capacity=4)


@pytest.fixture
def controller(lfs, config) -> AdmissionController:
    return AdmissionController(lfs, config, ServiceStats())


class TestBoundedQueue:
    def test_admits_until_capacity(self, controller):
        for _ in range(4):
            assert controller.try_admit("read") is Decision.ADMIT
        assert controller.in_flight == 4

    def test_rejects_at_capacity(self, controller):
        for _ in range(4):
            controller.try_admit("read")
        assert controller.try_admit("read") is Decision.REJECT
        assert controller.stats.rejections == 1

    def test_release_reopens_the_queue(self, controller):
        for _ in range(4):
            controller.try_admit("read")
        controller.release()
        assert controller.try_admit("read") is Decision.ADMIT

    def test_release_without_admit_raises(self, controller):
        with pytest.raises(RuntimeError):
            controller.release()

    def test_effective_capacity_scales_with_clients(self, lfs):
        config = ServiceConfig(num_clients=16)
        controller = AdmissionController(lfs, config, ServiceStats())
        assert controller.capacity == 64


class TestReserveWatermark:
    def test_fresh_fs_is_not_low(self, controller):
        # A fresh disk is nearly all clean segments.
        assert not controller.reserve_low()

    def test_watermark_sits_above_the_low_water_floor(self, lfs, config):
        controller = AdmissionController(lfs, config, ServiceStats())
        assert controller.watermark == (
            config.reserve_watermark + lfs.config.clean_low_water
        )

    def test_write_class_covers_log_consumers(self):
        assert WRITE_CLASS == {"write", "fsync", "delete"}

    def test_reads_never_throttle(self, lfs, config):
        controller = AdmissionController(lfs, config, ServiceStats())
        controller.watermark = 10**9  # force "low" for any real fs
        assert controller.reserve_low()
        assert controller.try_admit("read") is Decision.ADMIT
        assert controller.try_admit("open") is Decision.ADMIT

    def test_writes_throttle_when_low(self, lfs, config):
        controller = AdmissionController(lfs, config, ServiceStats())
        controller.watermark = 10**9
        assert controller.try_admit("write") is Decision.THROTTLE
        assert controller.in_flight == 0

    def test_forced_admission_after_max_retries(self, lfs, config):
        controller = AdmissionController(lfs, config, ServiceStats())
        controller.watermark = 10**9
        retries = config.max_throttle_retries
        assert controller.try_admit("write", retries - 1) is Decision.THROTTLE
        assert controller.try_admit("write", retries) is Decision.ADMIT
        assert controller.stats.forced_admissions == 1


class TestPayThrottle:
    def test_throttle_advances_simulated_time(self, lfs, config):
        # Fill enough that a cleaning pass has segments to work on.
        for i in range(40):
            lfs.write_file(f"/f{i}", bytes([i % 256]) * (128 * 1024))
            if i % 3 == 0:
                lfs.unlink(f"/f{i}")
        lfs.flush_log()
        controller = AdmissionController(lfs, config, ServiceStats())
        before = lfs.clock.now()
        stalled = controller.pay_throttle()
        assert lfs.clock.now() >= before
        assert stalled == lfs.clock.now() - before
        assert controller.stats.throttle_events == 1
        assert controller.stats.throttle_seconds == stalled

    def test_throttle_metrics_published(self, lfs, config):
        telemetry = Telemetry()
        controller = AdmissionController(
            lfs, config, ServiceStats(), telemetry=telemetry
        )
        controller.pay_throttle()
        assert telemetry.registry.value("service.throttle_events") == 1
