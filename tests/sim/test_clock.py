"""Unit tests for the simulated clock."""

import pytest

from repro.sim.clock import SimClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_moves_time(self):
        clock = SimClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(1.5)

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_past_is_noop(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance_to(3.0)
        assert clock.now() == 10.0

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(7.0)
        assert clock.now() == 7.0

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(4.0) == 4.0


class TestTimers:
    def test_timer_fires_during_advance(self):
        clock = SimClock()
        fired = []
        clock.call_at(5.0, lambda: fired.append(clock.now()))
        clock.advance_to(10.0)
        assert fired == [5.0]

    def test_timer_not_fired_early(self):
        clock = SimClock()
        fired = []
        clock.call_at(5.0, lambda: fired.append(True))
        clock.advance_to(4.9)
        assert fired == []

    def test_timers_fire_in_expiry_order(self):
        clock = SimClock()
        fired = []
        clock.call_at(3.0, lambda: fired.append("b"))
        clock.call_at(1.0, lambda: fired.append("a"))
        clock.call_at(5.0, lambda: fired.append("c"))
        clock.advance_to(10.0)
        assert fired == ["a", "b", "c"]

    def test_same_expiry_keeps_insertion_order(self):
        clock = SimClock()
        fired = []
        clock.call_at(2.0, lambda: fired.append("first"))
        clock.call_at(2.0, lambda: fired.append("second"))
        clock.advance_to(2.0)
        assert fired == ["first", "second"]

    def test_past_timer_fires_on_next_advance(self):
        clock = SimClock()
        clock.advance(10.0)
        fired = []
        clock.call_at(5.0, lambda: fired.append(True))
        clock.advance(0.001)
        assert fired == [True]

    def test_cancel_all(self):
        clock = SimClock()
        fired = []
        clock.call_at(1.0, lambda: fired.append(True))
        clock.cancel_all_timers()
        clock.advance_to(5.0)
        assert fired == []
        assert clock.pending_timers() == 0

    def test_pending_count(self):
        clock = SimClock()
        clock.call_at(1.0, lambda: None)
        clock.call_at(2.0, lambda: None)
        assert clock.pending_timers() == 2

    def test_clock_sits_at_expiry_while_firing(self):
        clock = SimClock()
        seen = []
        clock.call_at(3.0, lambda: seen.append(clock.now()))
        clock.call_at(6.0, lambda: seen.append(clock.now()))
        clock.advance_to(8.0)
        assert seen == [3.0, 6.0]


class TestTimerFifoOrdering:
    """Regression: equal-timestamp timers must fire strictly FIFO.

    The service layer's request scheduler routinely lands many events on
    the same instant; runs are only reproducible if ties break by
    scheduling order, independent of how the timer store rebalances.
    """

    def test_many_equal_timestamps_fire_in_scheduling_order(self):
        clock = SimClock()
        fired = []
        for i in range(100):
            clock.call_at(1.0, lambda i=i: fired.append(i))
        clock.advance_to(1.0)
        assert fired == list(range(100))

    def test_interleaved_equal_and_distinct_expiries(self):
        clock = SimClock()
        fired = []
        # Schedule in a deliberately scrambled order; ties at t=2.0 must
        # still come out in scheduling order (b before d before e).
        clock.call_at(3.0, lambda: fired.append("late"))
        clock.call_at(2.0, lambda: fired.append("b"))
        clock.call_at(1.0, lambda: fired.append("a"))
        clock.call_at(2.0, lambda: fired.append("d"))
        clock.call_at(2.0, lambda: fired.append("e"))
        clock.advance_to(5.0)
        assert fired == ["a", "b", "d", "e", "late"]

    def test_callback_scheduling_same_instant_fires_after_existing(self):
        clock = SimClock()
        fired = []

        def first():
            fired.append("first")
            # Scheduled mid-firing for the very same instant: runs in
            # this advance, after everything already queued for t=1.
            clock.call_at(1.0, lambda: fired.append("nested"))

        clock.call_at(1.0, first)
        clock.call_at(1.0, lambda: fired.append("second"))
        clock.advance_to(1.0)
        assert fired == ["first", "second", "nested"]

    def test_fifo_survives_partial_draining(self):
        clock = SimClock()
        fired = []
        for i in range(10):
            clock.call_at(float(i % 3), lambda i=i: fired.append(i))
        clock.advance_to(0.5)  # drains only the t=0 group
        assert fired == [0, 3, 6, 9]
        clock.advance_to(3.0)
        assert fired == [0, 3, 6, 9, 1, 4, 7, 2, 5, 8]


class TestNextTimerAt:
    def test_none_when_idle(self):
        assert SimClock().next_timer_at() is None

    def test_reports_earliest_expiry(self):
        clock = SimClock()
        clock.call_at(7.0, lambda: None)
        clock.call_at(2.0, lambda: None)
        assert clock.next_timer_at() == 2.0

    def test_advancing_to_next_timer_fires_exactly_that_batch(self):
        clock = SimClock()
        fired = []
        clock.call_at(2.0, lambda: fired.append("a"))
        clock.call_at(2.0, lambda: fired.append("b"))
        clock.call_at(4.0, lambda: fired.append("c"))
        clock.advance_to(clock.next_timer_at())
        assert fired == ["a", "b"]
        assert clock.now() == 2.0
        assert clock.next_timer_at() == 4.0


class TestBatchedDispatch:
    """Same-timestamp timers drain as one batch (one heap pop each)."""

    def test_batch_counters(self):
        clock = SimClock()
        for _ in range(10):
            clock.call_at(1.0, lambda: None)
        for _ in range(5):
            clock.call_at(2.0, lambda: None)
        clock.advance_to(3.0)
        assert clock.timers_fired == 15
        assert clock.timer_batches == 2

    def test_distinct_expiries_are_distinct_batches(self):
        clock = SimClock()
        for t in range(4):
            clock.call_at(float(t + 1), lambda: None)
        clock.advance_to(10.0)
        assert clock.timer_batches == 4
        assert clock.timers_fired == 4

    def test_pending_timers_tracks_buckets(self):
        clock = SimClock()
        for _ in range(3):
            clock.call_at(1.0, lambda: None)
        clock.call_at(2.0, lambda: None)
        assert clock.pending_timers() == 4
        clock.advance_to(1.0)
        assert clock.pending_timers() == 1
        clock.advance_to(2.0)
        assert clock.pending_timers() == 0

    def test_cancel_all_inside_callback_stops_batch(self):
        clock = SimClock()
        fired = []

        def cancel():
            fired.append("cancel")
            clock.cancel_all_timers()

        clock.call_at(1.0, cancel)
        clock.call_at(1.0, lambda: fired.append("late"))
        clock.call_at(2.0, lambda: fired.append("other"))
        clock.advance_to(5.0)
        assert fired == ["cancel"]
        assert clock.pending_timers() == 0
        assert clock.now() == 5.0

    def test_cancel_then_reschedule_same_expiry_inside_callback(self):
        clock = SimClock()
        fired = []

        def cancel_and_reschedule():
            fired.append("first")
            clock.cancel_all_timers()
            # A *new* bucket at the instant being drained: it replaces
            # the cancelled one and still fires within this advance.
            clock.call_at(1.0, lambda: fired.append("fresh"))

        clock.call_at(1.0, cancel_and_reschedule)
        clock.call_at(1.0, lambda: fired.append("stale"))
        clock.advance_to(1.0)
        assert fired == ["first", "fresh"]

    def test_earlier_expiry_scheduled_mid_batch_preempts(self):
        clock = SimClock(start=0.0)
        fired = []

        def schedule_earlier():
            fired.append("a")
            # Already-past expiry: must fire before the rest of the
            # t=2 batch continues.
            clock.call_at(1.0, lambda: fired.append("early"))

        clock.call_at(2.0, schedule_earlier)
        clock.call_at(2.0, lambda: fired.append("b"))
        clock.advance_to(2.0)
        assert fired == ["a", "early", "b"]

    def test_next_timer_at_skips_cancelled_entries(self):
        clock = SimClock()
        clock.call_at(1.0, lambda: None)
        clock.call_at(2.0, lambda: None)
        clock.cancel_all_timers()
        assert clock.next_timer_at() is None
        clock.call_at(3.0, lambda: None)
        assert clock.next_timer_at() == 3.0
