"""Unit tests for the CPU cost model."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.cpu import CpuCosts, CpuModel


class TestCpuCosts:
    def test_scaled_divides_costs(self):
        costs = CpuCosts()
        fast = costs.scaled(2.0)
        assert fast.create == pytest.approx(costs.create / 2.0)
        assert fast.syscall == pytest.approx(costs.syscall / 2.0)
        assert fast.copy_per_byte == pytest.approx(costs.copy_per_byte / 2.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CpuCosts().scaled(0.0)
        with pytest.raises(ValueError):
            CpuCosts().scaled(-1.0)

    def test_identity_scale(self):
        costs = CpuCosts()
        assert costs.scaled(1.0) == costs


class TestCpuModel:
    def test_charge_advances_clock(self):
        clock = SimClock()
        cpu = CpuModel(clock)
        cpu.charge(0.25)
        assert clock.now() == pytest.approx(0.25)
        assert cpu.total_cpu_seconds == pytest.approx(0.25)

    def test_negative_charge_rejected(self):
        cpu = CpuModel(SimClock())
        with pytest.raises(ValueError):
            cpu.charge(-1.0)

    def test_speed_factor_halves_time(self):
        slow = CpuModel(SimClock(), speed_factor=1.0)
        fast = CpuModel(SimClock(), speed_factor=2.0)
        slow.create()
        fast.create()
        assert fast.clock.now() == pytest.approx(slow.clock.now() / 2.0)

    def test_copy_scales_with_bytes(self):
        cpu = CpuModel(SimClock())
        cpu.copy(1024)
        one_kb = cpu.clock.now()
        cpu.copy(4096)
        assert cpu.clock.now() - one_kb == pytest.approx(4 * one_kb)

    def test_path_lookup_scales_with_components(self):
        cpu = CpuModel(SimClock())
        cpu.path_lookup(3)
        assert cpu.clock.now() == pytest.approx(cpu.costs.path_component * 3)

    def test_all_charge_helpers_accumulate(self):
        cpu = CpuModel(SimClock())
        cpu.syscall()
        cpu.create()
        cpu.remove()
        cpu.block_touch(2)
        cpu.cleaner_blocks(5)
        cpu.checkpoint()
        expected = (
            cpu.costs.syscall
            + cpu.costs.create
            + cpu.costs.remove
            + 2 * cpu.costs.block_touch
            + 5 * cpu.costs.cleaner_per_block
            + cpu.costs.checkpoint
        )
        assert cpu.total_cpu_seconds == pytest.approx(expected)
        assert cpu.clock.now() == pytest.approx(expected)
