"""Both storage managers must expose identical file semantics.

A deterministic pseudo-random operation stream is applied to LFS, FFS
and an in-memory model; afterwards (and after remount) all three must
agree on the namespace and every file's contents.
"""

import random

import pytest

from repro.ffs.filesystem import FastFileSystem
from repro.lfs.filesystem import LogStructuredFS
from tests.conftest import small_ffs_config, small_lfs_config


class ModelFs:
    """Dictionary model of a file system namespace."""

    def __init__(self):
        self.files = {}  # path -> bytes
        self.dirs = {"/"}

    def parent_ok(self, path):
        parent = path.rsplit("/", 1)[0] or "/"
        return parent in self.dirs


def apply_ops(fs, model, seed, n_ops=300):
    rng = random.Random(seed)
    for step in range(n_ops):
        op = rng.choice(
            ["create", "write", "append", "delete", "mkdir", "overwrite", "truncate"]
        )
        if op == "mkdir":
            name = f"/dir{rng.randrange(8)}"
            if name in model.dirs or name in model.files:
                continue
            fs.mkdir(name)
            model.dirs.add(name)
        elif op == "create":
            parent = rng.choice(sorted(model.dirs))
            name = f"{parent.rstrip('/')}/f{rng.randrange(40)}"
            if name in model.files or name in model.dirs:
                continue
            size = rng.randrange(0, 20000)
            payload = bytes([rng.randrange(256)]) * size
            fs.write_file(name, payload)
            model.files[name] = payload
        elif op in ("write", "overwrite") and model.files:
            name = rng.choice(sorted(model.files))
            size = rng.randrange(0, 30000)
            payload = bytes([rng.randrange(256)]) * size
            fs.write_file(name, payload)
            model.files[name] = payload
        elif op == "append" and model.files:
            name = rng.choice(sorted(model.files))
            extra = bytes([rng.randrange(256)]) * rng.randrange(1, 5000)
            with fs.open(name) as handle:
                handle.pwrite(len(model.files[name]), extra)
            model.files[name] += extra
        elif op == "truncate" and model.files:
            name = rng.choice(sorted(model.files))
            new_size = rng.randrange(0, len(model.files[name]) + 1)
            with fs.open(name) as handle:
                handle.truncate(new_size)
            model.files[name] = model.files[name][:new_size]
        elif op == "delete" and model.files:
            name = rng.choice(sorted(model.files))
            fs.unlink(name)
            del model.files[name]


def verify(fs, model):
    for name, payload in model.files.items():
        assert fs.read_file(name) == payload, name
    for dirname in model.dirs:
        expected = sorted(
            {
                path[len(dirname) :].lstrip("/").split("/")[0]
                for path in (set(model.files) | model.dirs - {"/"})
                if path != dirname
                and path.startswith(dirname.rstrip("/") + "/")
            }
        )
        assert fs.listdir(dirname) == expected, dirname


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_lfs_matches_model(disk, cpu, seed):
    fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
    model = ModelFs()
    apply_ops(fs, model, seed)
    verify(fs, model)
    fs.unmount()
    again = LogStructuredFS.mount(disk, cpu, small_lfs_config())
    verify(again, model)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_ffs_matches_model(disk, cpu, seed):
    fs = FastFileSystem.mkfs(disk, cpu, small_ffs_config())
    model = ModelFs()
    apply_ops(fs, model, seed)
    verify(fs, model)
    fs.unmount()
    again = FastFileSystem.mount(disk, cpu, small_ffs_config())
    verify(again, model)


def test_both_systems_agree(clock, cpu):
    """The same op stream produces the same observable state on both."""
    from repro.disk.geometry import wren_iv
    from repro.disk.sim_disk import SimDisk
    from repro.units import MIB

    lfs = LogStructuredFS.mkfs(
        SimDisk(wren_iv(64 * MIB), clock), cpu, small_lfs_config()
    )
    ffs = FastFileSystem.mkfs(
        SimDisk(wren_iv(64 * MIB), clock), cpu, small_ffs_config()
    )
    model_a, model_b = ModelFs(), ModelFs()
    apply_ops(lfs, model_a, seed=99)
    apply_ops(ffs, model_b, seed=99)
    assert model_a.files.keys() == model_b.files.keys()
    for name in model_a.files:
        assert lfs.read_file(name) == ffs.read_file(name)
    assert lfs.listdir("/") == ffs.listdir("/")
