"""Crash-consistency matrix: crash at many points, recover, verify.

For LFS the invariant is *prefix consistency*: the recovered state must
correspond to some prefix of the synced history — checkpointed state at
minimum, everything synced before the crash at best — and never a
corrupt in-between.  For FFS the invariant is that fsck always produces
a mountable, traversable file system.
"""

import pytest

from repro.ffs.filesystem import FastFileSystem
from repro.ffs.fsck import fsck
from repro.lfs.filesystem import LogStructuredFS
from repro.lfs.verify import verify_lfs
from tests.conftest import small_ffs_config, small_lfs_config


def lfs_generations(fs, generations=6, files_per_gen=20):
    """Write generations of files; sync after each; return history."""
    history = []
    for gen in range(generations):
        for i in range(files_per_gen):
            fs.write_file(f"/g{gen}_{i}", bytes([gen * 10 + i]) * 1500)
        if gen == 1:
            fs.checkpoint()
        else:
            fs.sync()
        history.append(gen)
    return history


class TestLfsCrashMatrix:
    @pytest.mark.parametrize("crash_after_gen", [0, 1, 2, 4, 5])
    def test_prefix_consistency(self, disk, cpu, crash_after_gen):
        fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
        for gen in range(crash_after_gen + 1):
            for i in range(20):
                fs.write_file(f"/g{gen}_{i}", bytes([gen * 10 + i]) * 1500)
            if gen == 1:
                fs.checkpoint()
            else:
                fs.sync()
        fs.crash()
        disk.revive()
        again = LogStructuredFS.mount(disk, cpu, small_lfs_config())
        # Everything synced before the crash must be present and exact
        # (roll-forward recovers synced-but-not-checkpointed data).
        for gen in range(crash_after_gen + 1):
            for i in range(20):
                data = again.read_file(f"/g{gen}_{i}")
                assert data == bytes([gen * 10 + i]) * 1500
        # The recovered image satisfies every on-disk invariant.
        again.unmount()
        report = verify_lfs(disk.device)
        assert report.consistent, report.errors

    def test_crash_with_unflushed_cache_loses_only_tail(self, disk, cpu):
        fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
        fs.write_file("/synced", b"s" * 2000)
        fs.sync()
        fs.write_file("/dirty-only", b"d" * 2000)  # never synced
        fs.crash()
        disk.revive()
        again = LogStructuredFS.mount(disk, cpu, small_lfs_config())
        assert again.read_file("/synced") == b"s" * 2000
        assert not again.exists("/dirty-only")

    def test_repeated_crashes(self, disk, cpu):
        fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
        survivors = {}
        for round_ in range(4):
            name = f"/round{round_}"
            fs.write_file(name, bytes([round_]) * 1000)
            fs.sync()
            survivors[name] = bytes([round_]) * 1000
            fs.crash()
            disk.revive()
            fs = LogStructuredFS.mount(disk, cpu, small_lfs_config())
            for path, payload in survivors.items():
                assert fs.read_file(path) == payload

    def test_crash_during_cleaning_pass(self, disk, cpu):
        config = small_lfs_config()
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        kept = []
        for round_ in range(3):
            names = []
            for i in range(120):
                name = f"/c{round_}_{i}"
                fs.write_file(name, bytes([(round_ * 60 + i) % 256]) * 4096)
                names.append(name)
            fs.sync()
            for idx, name in enumerate(names):
                if idx % 2:
                    fs.unlink(name)
                else:
                    kept.append(name)
        fs.sync()
        fs.checkpoint()
        fs.clean_now(fs.layout.num_segments)
        # Crash immediately after cleaning (which checkpointed).
        fs.crash()
        disk.revive()
        again = LogStructuredFS.mount(disk, cpu, config)
        for name in kept:
            assert len(again.read_file(name)) == 4096
        again.unmount()
        report = verify_lfs(disk.device)
        assert report.consistent, report.errors


class TestFfsCrashMatrix:
    @pytest.mark.parametrize("sync_before_crash", [True, False])
    def test_fsck_always_yields_mountable_fs(self, disk, cpu, sync_before_crash):
        fs = FastFileSystem.mkfs(disk, cpu, small_ffs_config())
        fs.mkdir("/d")
        for i in range(25):
            fs.write_file(f"/d/f{i}", bytes([i]) * 2500)
        if sync_before_crash:
            fs.sync()
        fs.write_file("/d/straggler", b"s" * 8192)
        fs.crash()
        disk.revive()
        fsck(disk)
        again = FastFileSystem.mount(disk, cpu, small_ffs_config())
        # Walk the whole tree: no exceptions, no corrupt structures.
        for name in again.listdir("/d"):
            again.stat(f"/d/{name}")
            again.read_file(f"/d/{name}")
        if sync_before_crash:
            for i in range(25):
                assert again.read_file(f"/d/f{i}") == bytes([i]) * 2500

    def test_synced_data_survives_crash(self, disk, cpu):
        fs = FastFileSystem.mkfs(disk, cpu, small_ffs_config())
        fs.write_file("/keep", b"k" * 5000)
        fs.sync()
        fs.crash()
        disk.revive()
        fsck(disk)
        again = FastFileSystem.mount(disk, cpu, small_ffs_config())
        assert again.read_file("/keep") == b"k" * 5000

    def test_lfs_recovery_faster_than_fsck(self, clock, cpu):
        """§4.4's punchline, as an invariant."""
        from repro.disk.geometry import wren_iv
        from repro.disk.sim_disk import SimDisk
        from repro.units import MIB

        disk_l = SimDisk(wren_iv(64 * MIB), clock)
        lfs = LogStructuredFS.mkfs(disk_l, cpu, small_lfs_config())
        disk_f = SimDisk(wren_iv(64 * MIB), clock)
        ffs = FastFileSystem.mkfs(disk_f, cpu, small_ffs_config())
        for fs in (lfs, ffs):
            for i in range(60):
                fs.write_file(f"/f{i}", bytes([i]) * 3000)
            fs.sync()
        if hasattr(lfs, "checkpoint"):
            lfs.checkpoint()
        lfs.crash()
        ffs.crash()
        disk_l.revive()
        disk_f.revive()
        start = clock.now()
        LogStructuredFS.mount(disk_l, cpu, small_lfs_config())
        lfs_time = clock.now() - start
        start = clock.now()
        fsck(disk_f)
        fsck_time = clock.now() - start
        assert lfs_time < fsck_time / 5
