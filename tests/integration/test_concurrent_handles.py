"""Multiple handles, interleaved operations, and cache coherence."""

import pytest

from repro.errors import StaleHandleError


class TestMultipleHandles:
    def test_two_handles_same_file_see_each_other(self, anyfs):
        anyfs.write_file("/f", b"0" * 100)
        a = anyfs.open("/f")
        b = anyfs.open("/f")
        a.pwrite(0, b"AAAA")
        assert b.pread(0, 4) == b"AAAA"
        b.pwrite(50, b"BB")
        assert a.pread(50, 2) == b"BB"
        a.close()
        b.close()

    def test_size_visible_across_handles(self, anyfs):
        a = anyfs.create("/f")
        b = anyfs.open("/f")
        a.write(b"grow me to here")
        assert b.size == 15
        b.truncate(4)
        assert a.size == 4

    def test_rename_keeps_open_handle_valid(self, anyfs):
        handle = anyfs.create("/old")
        handle.write(b"moving")
        anyfs.rename("/old", "/new")
        # The handle addresses the inode, not the path.
        assert handle.pread(0, 6) == b"moving"
        assert anyfs.read_file("/new") == b"moving"

    def test_overwriting_rename_staleness(self, anyfs):
        anyfs.write_file("/src", b"winner")
        doomed = anyfs.create("/dst")
        doomed.write(b"loser")
        anyfs.rename("/src", "/dst")
        with pytest.raises(StaleHandleError):
            doomed.pread(0, 1)
        assert anyfs.read_file("/dst") == b"winner"

    def test_interleaved_writes_across_files(self, anyfs):
        handles = [anyfs.create(f"/f{i}") for i in range(6)]
        for round_ in range(5):
            for index, handle in enumerate(handles):
                handle.write(bytes([index * 10 + round_]) * 500)
        for handle in handles:
            handle.close()
        anyfs.sync()
        anyfs.flush_caches()
        for index in range(6):
            data = anyfs.read_file(f"/f{index}")
            assert len(data) == 2500
            for round_ in range(5):
                chunk = data[round_ * 500 : (round_ + 1) * 500]
                assert chunk == bytes([index * 10 + round_]) * 500

    def test_sync_between_interleaved_writes(self, anyfs):
        a = anyfs.create("/a")
        b = anyfs.create("/b")
        a.write(b"first half ")
        anyfs.sync()
        b.write(b"other file")
        a.write(b"second half")
        anyfs.sync()
        assert anyfs.read_file("/a") == b"first half second half"
        assert anyfs.read_file("/b") == b"other file"
