"""Tests that pin the *disk access patterns* each design produces.

These are the mechanism checks behind the performance results: if one
of these regresses, a benchmark shape will silently degrade.
"""

import pytest

from repro.disk.sim_disk import SimDisk
from repro.disk.trace import AccessTier, TraceRecorder
from repro.disk.geometry import wren_iv
from repro.ffs.filesystem import FastFileSystem
from repro.lfs.filesystem import LogStructuredFS
from repro.units import MIB
from tests.conftest import small_ffs_config, small_lfs_config


@pytest.fixture
def traced_lfs(clock, cpu):
    trace = TraceRecorder()
    disk = SimDisk(wren_iv(64 * MIB), clock, trace=trace)
    fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
    trace.clear()
    return fs, trace


@pytest.fixture
def traced_ffs(clock, cpu):
    trace = TraceRecorder()
    disk = SimDisk(wren_iv(64 * MIB), clock, trace=trace)
    fs = FastFileSystem.mkfs(disk, cpu, small_ffs_config())
    trace.clear()
    return fs, trace


class TestLfsWritePattern:
    def test_flush_is_one_large_write(self, traced_lfs):
        fs, trace = traced_lfs
        for i in range(20):
            fs.write_file(f"/f{i}", b"x" * 3000)
        fs.flush_log()
        writes = trace.writes()
        assert len(writes) == 1
        assert writes[0].nbytes > 20 * 3000

    def test_consecutive_flushes_sequential(self, traced_lfs):
        fs, trace = traced_lfs
        for round_ in range(3):
            fs.write_file(f"/r{round_}", b"y" * 5000)
            fs.flush_log()
        writes = trace.writes()
        assert len(writes) == 3
        # All but the first land exactly where the previous ended.
        assert all(
            w.tier is AccessTier.SEQUENTIAL for w in writes[1:]
        )

    def test_checkpoint_is_the_only_sync_write(self, traced_lfs):
        fs, trace = traced_lfs
        fs.write_file("/f", b"z" * 10000)
        fs.checkpoint()
        sync_writes = trace.sync_writes()
        assert len(sync_writes) == 1
        assert "checkpoint" in sync_writes[0].label


class TestFfsWritePattern:
    def test_writeback_one_request_per_block(self, traced_ffs):
        fs, trace = traced_ffs
        with fs.create("/f") as handle:
            handle.write(b"d" * fs.block_size * 6)
        trace.clear()
        fs.sync()
        data_writes = [
            event for event in trace.writes() if "writeback" in event.label
        ]
        # Six data blocks -> at least six separate requests (SunOS-era
        # FFS does not cluster writes).
        assert len(data_writes) >= 6
        assert all(e.nbytes == fs.block_size for e in data_writes)

    def test_random_writes_flush_in_dirty_order(self, traced_ffs):
        fs, trace = traced_ffs
        with fs.create("/f") as handle:
            handle.write(b"s" * fs.block_size * 16)
        fs.sync()
        # Dirty blocks in a scrambled order.
        order = [9, 2, 14, 5, 11, 0]
        with fs.open("/f") as handle:
            for lbn in order:
                handle.pwrite(lbn * fs.block_size, b"R" * fs.block_size)
        trace.clear()
        fs.sync()
        data_writes = [
            event for event in trace.writes() if "data" in event.label
        ]
        sectors = [event.sector for event in data_writes]
        # The flush follows dirty order, not an elevator sweep: the
        # sector sequence is NOT sorted (this is the §5.2 random-write
        # penalty mechanism).
        assert sectors != sorted(sectors)


class TestReadClustering:
    def test_sequential_read_coalesces_requests(self, anyfs):
        payload = b"c" * (anyfs.block_size * 8)
        anyfs.write_file("/f", payload)
        anyfs.flush_caches()
        reads_before = anyfs.disk.stats.reads
        assert anyfs.read_file("/f") == payload
        data_reads = anyfs.disk.stats.reads - reads_before
        # Far fewer requests than blocks: contiguous runs coalesce.
        assert data_reads < 8

    def test_scattered_blocks_need_separate_requests(self, lfs):
        # Write blocks of one file in separate flushes so they end up
        # discontiguous in the log.
        with lfs.create("/scatter") as handle:
            for lbn in range(4):
                handle.pwrite(lbn * lfs.block_size, b"s" * lfs.block_size)
                lfs.flush_log()
        lfs.flush_caches()
        reads_before = lfs.disk.stats.reads
        lfs.read_file("/scatter")
        assert lfs.disk.stats.reads - reads_before >= 3
