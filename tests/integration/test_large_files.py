"""Large-file edge cases: indirect trees under churn and cleaning."""


from repro.common.inode import N_DIRECT, pointers_per_block
from repro.lfs.filesystem import LogStructuredFS
from tests.conftest import small_lfs_config


def big_payload(tag: int, nbytes: int) -> bytes:
    stamp = bytes([tag]) * 251  # prime-ish block so patterns don't align
    reps = nbytes // len(stamp) + 1
    return (stamp * reps)[:nbytes]


class TestDoubleIndirect:
    def test_lfs_double_indirect_file(self, disk, cpu):
        # Small blocks would need >512 blocks for a double indirect;
        # with 4 KB blocks that is > 12 + 512 blocks = > 2 MB.
        config = small_lfs_config(cache_bytes=4 * 1024 * 1024)
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        ppb = pointers_per_block(fs.block_size)
        size = (N_DIRECT + ppb + 5) * fs.block_size  # into the 2nd level
        payload = big_payload(7, size)
        fs.write_file("/huge", payload)
        fs.sync()
        fs.flush_caches()
        assert fs.read_file("/huge") == payload

    def test_double_indirect_survives_remount(self, disk, cpu):
        config = small_lfs_config(cache_bytes=4 * 1024 * 1024)
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        ppb = pointers_per_block(fs.block_size)
        size = (N_DIRECT + ppb + 3) * fs.block_size
        payload = big_payload(9, size)
        fs.write_file("/huge", payload)
        fs.unmount()
        again = LogStructuredFS.mount(disk, cpu, config)
        assert again.read_file("/huge") == payload

    def test_truncate_through_indirect_levels(self, anyfs):
        bs = anyfs.block_size
        size = (N_DIRECT + 20) * bs
        payload = big_payload(3, size)
        anyfs.write_file("/f", payload)
        anyfs.sync()
        with anyfs.open("/f") as handle:
            handle.truncate(5 * bs)  # back into the direct range
        anyfs.sync()
        anyfs.flush_caches()
        assert anyfs.read_file("/f") == payload[: 5 * bs]

    def test_shrink_then_regrow(self, anyfs):
        bs = anyfs.block_size
        first = big_payload(1, (N_DIRECT + 8) * bs)
        anyfs.write_file("/f", first)
        anyfs.sync()
        with anyfs.open("/f") as handle:
            handle.truncate(0)
        second = big_payload(2, (N_DIRECT + 4) * bs)
        with anyfs.open("/f") as handle:
            handle.pwrite(0, second)
        anyfs.sync()
        anyfs.flush_caches()
        assert anyfs.read_file("/f") == second


class TestLargeFileThroughCleaning:
    def test_indirect_blocks_relocated_correctly(self, disk, cpu):
        config = small_lfs_config(cache_bytes=4 * 1024 * 1024)
        fs = LogStructuredFS.mkfs(disk, cpu, config)
        bs = fs.block_size
        keep = big_payload(5, (N_DIRECT + 30) * bs)
        fs.write_file("/keep", keep)
        # Interleave with churn so /keep's segments fragment.
        for round_ in range(4):
            for i in range(150):
                fs.write_file(f"/junk{round_}_{i}", bytes([i % 256]) * 4096)
            fs.sync()
            for i in range(150):
                fs.unlink(f"/junk{round_}_{i}")
        fs.sync()
        fs.clean_now(fs.layout.num_segments)
        assert fs.read_file("/keep") == keep
        fs.unmount()
        again = LogStructuredFS.mount(disk, cpu, config)
        assert again.read_file("/keep") == keep


class TestFfsGroupSpillover:
    def test_maxbpg_spreads_large_files(self, disk, cpu):
        from repro.ffs.config import FfsConfig
        from repro.ffs.filesystem import FastFileSystem
        from repro.units import MIB

        config = FfsConfig(
            cg_bytes=8 * MIB, inodes_per_cg=512, maxbpg=16,
            cache_bytes=4 * MIB,
        )
        fs = FastFileSystem.mkfs(disk, cpu, config)
        size = 40 * fs.block_size  # spans three maxbpg windows
        payload = big_payload(6, size)
        fs.write_file("/spread", payload)
        fs.sync()
        inode = fs._get_inode(fs.stat("/spread").inum)
        groups = {
            fs.layout.cg_of_block(fs.block_map.get(inode, lbn))
            for lbn in range(40)
        }
        assert len(groups) >= 3  # the file really spread out
        fs.flush_caches()
        assert fs.read_file("/spread") == payload


class TestDeepPaths:
    def test_ten_levels(self, anyfs):
        path = ""
        for depth in range(10):
            path += f"/level{depth}"
            anyfs.mkdir(path)
        anyfs.write_file(path + "/leaf", b"deep")
        assert anyfs.read_file(path + "/leaf") == b"deep"
        assert anyfs.stat(path).is_dir

    def test_normalized_traversal(self, anyfs):
        anyfs.mkdir("/a")
        anyfs.write_file("/a/f", b"x")
        assert anyfs.read_file("/a/../a/./f") == b"x"
